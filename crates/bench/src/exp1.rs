//! Exp 1 — general prediction accuracy: Table III (overall test set),
//! Fig. 7 (grouped by hardware range) and Fig. 8 (grouped by query type).

use crate::harness::{evaluate_all, print_rows, Models, Scale};
use costream::prelude::*;
use costream_dsps::CostMetric;

/// Results of Exp 1.
pub struct Exp1Result {
    /// Table III rows.
    pub overall: Vec<crate::harness::MetricRow>,
    /// Fig. 8: (query-type label, e2e-latency Q50, success accuracy).
    pub by_query_type: Vec<(String, f64, f64)>,
    /// Fig. 7: (dimension label, bucket, e2e-latency Q50).
    pub by_hardware: Vec<(String, String, f64)>,
}

fn query_type_label(item: &CorpusItem) -> String {
    let (_, _, aggs, joins) = item.query.kind_counts();
    let base = match joins {
        0 => "Linear",
        1 => "2-Way-Join",
        _ => "3-Way-Join",
    };
    if aggs > 0 {
        format!("{base} +Agg")
    } else {
        base.to_string()
    }
}

/// Runs Exp 1 on an already trained model bundle and the held-out test set.
pub fn run(models: &Models, test: &Corpus, scale: &Scale) -> Exp1Result {
    // --- Table III --- Classification accuracies are measured on a larger
    // freshly generated evaluation corpus: the 10% test split contains only
    // a handful of failed executions, far too few for a balanced accuracy.
    let class_eval = Corpus::generate(
        (scale.corpus_size * 2).max(600),
        scale.seed.wrapping_add(81),
        FeatureRanges::training(),
        &SimConfig::default(),
    );
    let mut overall = evaluate_all(models, test, scale.seed);
    let class_rows = evaluate_all(models, &class_eval, scale.seed);
    for r in &mut overall {
        if !r.metric.is_regression() {
            let src = class_rows.iter().find(|c| c.metric == r.metric).expect("all metrics");
            r.costream = src.costream;
            r.flat = src.flat;
        }
    }
    print_rows(
        "Table III: overall test-set results",
        &overall,
        &[
            ("Throughput", "1.33 / 5.60", "9.92 / 590.34"),
            ("E2E-latency", "1.37 / 13.28", "24.96 / 827.59"),
            ("Processing latency", "1.46 / 13.90", "22.87 / 458.14"),
            ("Backpressure", "87.89%", "68.70%"),
            ("Query success", "94.96%", "76.85%"),
        ],
    );

    // --- Fig. 8: by query type ---
    println!(
        "\n== Fig. 8: q-error / accuracy per query type (paper: Q50 <= 1.6 everywhere, rising with complexity) =="
    );
    let le = models.ensemble(CostMetric::E2eLatency);
    let succ = models.ensemble(CostMetric::Success);
    let mut by_query_type = Vec::new();
    let labels = [
        "Linear",
        "Linear +Agg",
        "2-Way-Join",
        "2-Way-Join +Agg",
        "3-Way-Join",
        "3-Way-Join +Agg",
    ];
    for label in labels {
        let items: Vec<&CorpusItem> = test
            .items
            .iter()
            .filter(|i| i.metrics.success && query_type_label(i) == label)
            .collect();
        if items.len() < 3 {
            continue;
        }
        let preds = le.predict_items(&items);
        let q = QErrorSummary::of(
            &items
                .iter()
                .zip(&preds)
                .map(|(i, &p)| (i.metrics.e2e_latency_ms, p))
                .collect::<Vec<_>>(),
        );
        let all_items: Vec<&CorpusItem> = test.items.iter().filter(|i| query_type_label(i) == label).collect();
        let spreds = {
            let graphs: Vec<_> = all_items
                .iter()
                .map(|i| i.graph(costream::Featurization::Full))
                .collect();
            let refs: Vec<&costream::JointGraph> = graphs.iter().collect();
            succ.predict_graphs(&refs)
        };
        let acc = accuracy(
            &all_items
                .iter()
                .zip(&spreds)
                .map(|(i, &p)| (i.metrics.success, p > 0.5))
                .collect::<Vec<_>>(),
        );
        println!(
            "{label:<18} E2E-lat Q50 {:.2}   success acc {:.1}%  (n={})",
            q.q50,
            acc * 100.0,
            items.len()
        );
        by_query_type.push((label.to_string(), q.q50, acc));
    }

    // --- Fig. 7: by hardware range ---
    println!("\n== Fig. 7: median q-error of E2E-latency over hardware ranges (paper: <= 1.6 across all bins) ==");
    let mut by_hardware = Vec::new();
    type Dim = (&'static str, fn(&CorpusItem) -> f64, Vec<f64>);
    let dims: [Dim; 4] = [
        ("CPU (%)", |i| i.cluster.mean_features().0, vec![200.0, 400.0, 600.0]),
        (
            "RAM (MB)",
            |i| i.cluster.mean_features().1,
            vec![4000.0, 12000.0, 24000.0],
        ),
        (
            "Bandwidth (Mbit/s)",
            |i| i.cluster.mean_features().2,
            vec![200.0, 1600.0, 6400.0],
        ),
        ("Latency (ms)", |i| i.cluster.mean_features().3, vec![10.0, 40.0, 100.0]),
    ];
    for (name, feature, cuts) in dims {
        let mut edges = vec![f64::NEG_INFINITY];
        edges.extend(cuts.iter().copied());
        edges.push(f64::INFINITY);
        for w in edges.windows(2) {
            let items: Vec<&CorpusItem> = test
                .items
                .iter()
                .filter(|i| i.metrics.success && feature(i) > w[0] && feature(i) <= w[1])
                .collect();
            if items.len() < 3 {
                continue;
            }
            let preds = le.predict_items(&items);
            let q = QErrorSummary::of(
                &items
                    .iter()
                    .zip(&preds)
                    .map(|(i, &p)| (i.metrics.e2e_latency_ms, p))
                    .collect::<Vec<_>>(),
            );
            let bucket = format!("({:.0}, {:.0}]", w[0].max(0.0), w[1].min(1e9));
            println!("{name:<20} {bucket:<18} Q50 {:.2}  (n={})", q.q50, items.len());
            by_hardware.push((name.to_string(), bucket, q.q50));
        }
    }

    Exp1Result {
        overall,
        by_query_type,
        by_hardware,
    }
}
