//! Shared machinery for the experiment suite: scales, model bundles and
//! table formatting.

use costream::prelude::*;
use costream_baselines::{flat_features, FlatVectorModel, GbdtConfig};
use costream_dsps::CostMetric;

/// Experiment scale. The paper's corpus has 43,281 traces and trains on a
/// CloudLab cluster; the suite defaults to a laptop-size scale that keeps
/// the *shape* of every result while finishing in minutes.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Synthetic corpus size for the main experiments.
    pub corpus_size: usize,
    /// Training epochs for the GNN.
    pub epochs: usize,
    /// Ensemble size (the paper uses 3 for placement).
    pub ensemble_k: usize,
    /// Queries per generalization experiment (paper: n = 100).
    pub eval_queries: usize,
    /// Queries per type in the placement experiment (paper: 50).
    pub opt_queries: usize,
    /// Placement candidates enumerated per query.
    pub candidates: usize,
    /// Corpus size for the per-setting retrainings of Exp 3/4/7.
    pub retrain_corpus: usize,
    /// Epochs for the per-setting retrainings.
    pub retrain_epochs: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Tiny scale for smoke tests.
    pub fn quick() -> Self {
        Scale {
            corpus_size: 260,
            epochs: 15,
            ensemble_k: 1,
            eval_queries: 20,
            opt_queries: 4,
            candidates: 6,
            retrain_corpus: 200,
            retrain_epochs: 10,
            seed: 7,
        }
    }

    /// Default reproduction scale (minutes per experiment on one core).
    pub fn paper() -> Self {
        Scale {
            corpus_size: 2600,
            epochs: 70,
            ensemble_k: 3,
            eval_queries: 100,
            opt_queries: 20,
            candidates: 12,
            retrain_corpus: 1100,
            retrain_epochs: 45,
            seed: 7,
        }
    }
}

/// A full bundle of trained predictors: one Costream ensemble and one
/// flat-vector baseline per cost metric.
pub struct Models {
    /// Costream ensembles by metric (ordered as [`CostMetric::ALL`]).
    pub ensembles: Vec<Ensemble>,
    /// Flat-vector baselines by metric (same order).
    pub flat: Vec<FlatVectorModel>,
}

impl Models {
    /// The ensemble for a metric.
    pub fn ensemble(&self, metric: CostMetric) -> &Ensemble {
        self.ensembles
            .iter()
            .find(|e| e.metric == metric)
            .expect("all metrics trained")
    }

    /// The flat baseline for a metric.
    pub fn flat(&self, metric: CostMetric) -> &FlatVectorModel {
        self.flat
            .iter()
            .find(|m| m.metric == metric)
            .expect("all metrics trained")
    }
}

/// Trains Costream ensembles and flat-vector baselines for all five
/// metrics on the same training corpus.
pub fn train_all(train: &Corpus, scale: &Scale) -> Models {
    let cfg = TrainConfig {
        epochs: scale.epochs,
        seed: scale.seed,
        ..Default::default()
    };
    let ensembles = CostMetric::ALL
        .iter()
        .map(|&m| {
            eprintln!("  training Costream {:?} (k={}) ...", m, scale.ensemble_k);
            Ensemble::train(train, m, &cfg, scale.ensemble_k)
        })
        .collect();
    let flat = CostMetric::ALL
        .iter()
        .map(|&m| {
            eprintln!("  training FlatVector {m:?} ...");
            train_flat(train, m)
        })
        .collect();
    Models { ensembles, flat }
}

/// Trains one flat-vector baseline model. Classification metrics get the
/// same minority oversampling the GNN training applies.
pub fn train_flat(train: &Corpus, metric: CostMetric) -> FlatVectorModel {
    let items: Vec<&CorpusItem> = if metric.is_regression() {
        train.successful()
    } else {
        train.items.iter().collect()
    };
    let mut xs: Vec<Vec<f64>> = items
        .iter()
        .map(|i| flat_features(&i.query, &i.cluster, &i.placement, &i.est_sels))
        .collect();
    let mut ys: Vec<f64> = items.iter().map(|i| i.metrics.get(metric)).collect();
    if !metric.is_regression() {
        let pos: Vec<usize> = (0..ys.len()).filter(|&i| ys[i] > 0.5).collect();
        let neg: Vec<usize> = (0..ys.len()).filter(|&i| ys[i] <= 0.5).collect();
        if !pos.is_empty() && !neg.is_empty() {
            let minority = if pos.len() < neg.len() { pos } else { neg };
            let majority_len = ys.len() - minority.len();
            for k in 0..majority_len.saturating_sub(minority.len()) {
                xs.push(xs[minority[k % minority.len()]].clone());
                ys.push(ys[minority[k % minority.len()]]);
            }
        }
    }
    FlatVectorModel::fit(&xs, &ys, metric, &GbdtConfig::default())
}

/// Flat-baseline predictions for a set of corpus items.
pub fn flat_predict(model: &FlatVectorModel, items: &[&CorpusItem]) -> Vec<f64> {
    items
        .iter()
        .map(|i| model.predict(&flat_features(&i.query, &i.cluster, &i.placement, &i.est_sels)))
        .collect()
}

/// Q-error summary of an ensemble over the successful items of a corpus.
pub fn eval_ensemble_regression(e: &Ensemble, corpus: &Corpus) -> QErrorSummary {
    let items = corpus.successful();
    let preds = e.predict_items(&items);
    QErrorSummary::of(
        &items
            .iter()
            .zip(&preds)
            .map(|(i, &p)| (i.metrics.get(e.metric), p))
            .collect::<Vec<_>>(),
    )
}

/// Accuracy of an ensemble over a balanced subset of a corpus.
pub fn eval_ensemble_classification(e: &Ensemble, corpus: &Corpus, seed: u64) -> f64 {
    let items = corpus.balanced(e.metric, seed);
    if items.is_empty() {
        return 1.0;
    }
    let preds = e.predict_items(&items);
    accuracy(
        &items
            .iter()
            .zip(&preds)
            .map(|(i, &p)| (i.metrics.get(e.metric) > 0.5, p > 0.5))
            .collect::<Vec<_>>(),
    )
}

/// Q-error summary of a flat baseline over the successful items.
pub fn eval_flat_regression(m: &FlatVectorModel, corpus: &Corpus) -> QErrorSummary {
    let items = corpus.successful();
    let preds = flat_predict(m, &items);
    QErrorSummary::of(
        &items
            .iter()
            .zip(&preds)
            .map(|(i, &p)| (i.metrics.get(m.metric), p))
            .collect::<Vec<_>>(),
    )
}

/// Accuracy of a flat baseline over a balanced subset.
pub fn eval_flat_classification(m: &FlatVectorModel, corpus: &Corpus, seed: u64) -> f64 {
    let items = corpus.balanced(m.metric, seed);
    if items.is_empty() {
        return 1.0;
    }
    let preds = flat_predict(m, &items);
    accuracy(
        &items
            .iter()
            .zip(&preds)
            .map(|(i, &p)| (i.metrics.get(m.metric) > 0.5, p > 0.5))
            .collect::<Vec<_>>(),
    )
}

/// One comparison row of a results table.
#[derive(Clone, Debug)]
pub struct MetricRow {
    /// Metric name.
    pub metric: CostMetric,
    /// Costream Q50/Q95 (regression) or accuracy in `q50` (classification).
    pub costream: (f64, f64),
    /// FlatVector Q50/Q95 or accuracy.
    pub flat: (f64, f64),
}

/// Evaluates all five metrics on one corpus against both model families.
pub fn evaluate_all(models: &Models, corpus: &Corpus, seed: u64) -> Vec<MetricRow> {
    CostMetric::ALL
        .iter()
        .map(|&m| {
            if m.is_regression() {
                let c = eval_ensemble_regression(models.ensemble(m), corpus);
                let f = eval_flat_regression(models.flat(m), corpus);
                MetricRow {
                    metric: m,
                    costream: (c.q50, c.q95),
                    flat: (f.q50, f.q95),
                }
            } else {
                let c = eval_ensemble_classification(models.ensemble(m), corpus, seed);
                let f = eval_flat_classification(models.flat(m), corpus, seed);
                MetricRow {
                    metric: m,
                    costream: (c, f64::NAN),
                    flat: (f, f64::NAN),
                }
            }
        })
        .collect()
}

/// Prints a comparison table in the layout of Table III.
pub fn print_rows(title: &str, rows: &[MetricRow], paper: &[(&str, &str, &str)]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>20} {:>20}   paper (Costream | Flat)",
        "Metric", "COSTREAM", "FLATVECTOR"
    );
    for (i, r) in rows.iter().enumerate() {
        let fmt = |v: (f64, f64)| {
            if v.1.is_nan() {
                format!("{:.2}%", v.0 * 100.0)
            } else {
                format!("Q50 {:.2} Q95 {:.2}", v.0, v.1)
            }
        };
        let paper_note = paper.get(i).map(|(_, c, f)| format!("{c} | {f}")).unwrap_or_default();
        println!(
            "{:<22} {:>20} {:>20}   {}",
            r.metric.name(),
            fmt(r.costream),
            fmt(r.flat),
            paper_note
        );
    }
}

/// Median of a sample (convenience re-export for experiment modules).
pub fn median(values: &[f64]) -> f64 {
    costream::qerror::median(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_small() {
        let s = Scale::quick();
        assert!(s.corpus_size < Scale::paper().corpus_size);
    }

    #[test]
    fn train_all_and_evaluate_all_run_end_to_end() {
        let scale = Scale {
            corpus_size: 160,
            epochs: 8,
            ..Scale::quick()
        };
        let corpus = Corpus::generate(
            scale.corpus_size,
            scale.seed,
            FeatureRanges::training(),
            &SimConfig::default(),
        );
        let (train, _, test) = corpus.split(scale.seed);
        let models = train_all(&train, &scale);
        let rows = evaluate_all(&models, &test, 1);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.costream.0.is_finite());
            assert!(r.flat.0.is_finite());
        }
    }
}
