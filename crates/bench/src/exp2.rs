//! Exp 2 — placement optimization: Fig. 9 (median speed-ups of the
//! Costream- and FlatVector-chosen initial placements over the heuristic
//! initial placement) and Fig. 10 (slow-down and monitoring overhead of an
//! online rescheduling baseline).

use crate::harness::{flat_predict, median, Models, Scale};
use costream::optimizer::enumerate_candidates;
use costream::prelude::*;
use costream_baselines::{run_monitoring, MonitoringConfig};
use costream_dsps::{simulate, CostMetric};
use costream_query::generator::{QueryTemplate, WorkloadGenerator};
use costream_query::selectivity::SelectivityEstimator;

/// Results of Exp 2a (Fig. 9).
pub struct Exp2aResult {
    /// (query-type label, Costream median speed-up, Flat median speed-up).
    pub speedups: Vec<(String, f64, f64)>,
}

/// Results of Exp 2b (Fig. 10).
pub struct Exp2bResult {
    /// Per query: (event rate, selectivity, slow-down of monitoring's
    /// initial placement vs Costream, monitoring overhead seconds or None).
    pub rows: Vec<(f64, f64, f64, Option<f64>)>,
}

fn pick_with_flat(models: &Models, items: &[CorpusItem]) -> usize {
    // Score all candidate items with the flat baseline and apply the same
    // S/RO filter + argmin-Lp rule as the Costream optimizer.
    let refs: Vec<&CorpusItem> = items.iter().collect();
    let lp = flat_predict(models.flat(CostMetric::ProcessingLatency), &refs);
    let s = flat_predict(models.flat(CostMetric::Success), &refs);
    let ro = flat_predict(models.flat(CostMetric::Backpressure), &refs);
    let viable: Vec<usize> = (0..items.len()).filter(|&i| s[i] >= 0.5 && ro[i] < 0.5).collect();
    let set = if viable.is_empty() {
        (0..items.len()).collect::<Vec<_>>()
    } else {
        viable
    };
    set.into_iter()
        .min_by(|&a, &b| lp[a].partial_cmp(&lp[b]).expect("finite predictions"))
        .expect("non-empty candidates")
}

/// Runs Exp 2a: optimizes the initial placement of `scale.opt_queries`
/// queries per type and reports the median Lp speed-up over the heuristic
/// initial placement.
pub fn run_2a(models: &Models, scale: &Scale) -> Exp2aResult {
    println!("\n== Fig. 9: median Lp speed-up of optimized initial placements ==");
    println!("(paper: Costream up to 21.34x, FlatVector up to 9.79x; Costream >= Flat per type)");
    let optimizer = costream::optimizer::PlacementOptimizer::new(
        models.ensemble(CostMetric::ProcessingLatency),
        models.ensemble(CostMetric::Success),
        models.ensemble(CostMetric::Backpressure),
        scale.candidates,
    );
    let sim = SimConfig::default();
    let mut speedups = Vec::new();
    let cases = [
        (QueryTemplate::Linear, false, "Linear"),
        (QueryTemplate::Linear, true, "Linear +Agg"),
        (QueryTemplate::TwoWayJoin, false, "2-Way-Join"),
        (QueryTemplate::TwoWayJoin, true, "2-Way-Join +Agg"),
        (QueryTemplate::ThreeWayJoin, false, "3-Way-Join"),
        (QueryTemplate::ThreeWayJoin, true, "3-Way-Join +Agg"),
    ];
    for (template, with_agg, label) in cases {
        let mut wg = WorkloadGenerator::new(scale.seed.wrapping_add(900), FeatureRanges::training());
        let mut est = SelectivityEstimator::realistic(scale.seed.wrapping_add(901));
        let mut cs_speed = Vec::new();
        let mut flat_speed = Vec::new();
        for k in 0..scale.opt_queries {
            let n_filters = wg.sample_filter_count();
            let query = wg.query_with(template, n_filters, with_agg);
            let cluster = wg.cluster(5);
            let sels = est.estimate_query(&query);
            let seed = scale.seed.wrapping_add(1000 + k as u64);

            let result = optimizer.optimize(&query, &cluster, &sels, Featurization::Full, seed);
            // Flat baseline picks among the same candidates.
            let candidates = enumerate_candidates(&query, &cluster, scale.candidates, seed);
            let cand_items: Vec<CorpusItem> = candidates
                .iter()
                .map(|p| CorpusItem {
                    query: query.clone(),
                    cluster: cluster.clone(),
                    placement: p.clone(),
                    est_sels: sels.clone(),
                    metrics: CostMetrics::failed(), // labels unused for prediction
                })
                .collect();
            let flat_choice = candidates[pick_with_flat(models, &cand_items)].clone();

            let run = |p: &costream_query::Placement| {
                let r = simulate(&query, &cluster, p, &sim.with_seed(seed));
                if r.metrics.success {
                    r.metrics.processing_latency_ms
                } else {
                    sim.duration_s * 1000.0
                }
            };
            let lp_initial = run(&result.initial);
            let lp_costream = run(&result.best);
            let lp_flat = run(&flat_choice);
            cs_speed.push(lp_initial / lp_costream.max(1e-3));
            flat_speed.push(lp_initial / lp_flat.max(1e-3));
        }
        let (c, f) = (median(&cs_speed), median(&flat_speed));
        println!(
            "{label:<18} Costream {c:>7.2}x   FlatVector {f:>7.2}x  (n={})",
            cs_speed.len()
        );
        speedups.push((label.to_string(), c, f));
    }
    Exp2aResult { speedups }
}

/// Runs Exp 2b: compares Costream's initial placement with the online
/// monitoring baseline over a sweep of linear filter queries.
pub fn run_2b(models: &Models, scale: &Scale) -> Exp2bResult {
    println!("\n== Fig. 10: online monitoring baseline vs Costream initial placement ==");
    println!("(paper: slow-down up to 166x; monitoring overhead 70s .. >2min)");
    let optimizer = costream::optimizer::PlacementOptimizer::new(
        models.ensemble(CostMetric::ProcessingLatency),
        models.ensemble(CostMetric::Success),
        models.ensemble(CostMetric::Backpressure),
        scale.candidates,
    );
    let sim = SimConfig::default();
    let rates = [100.0, 400.0, 1600.0, 6400.0];
    let sels = [0.1, 0.5, 0.9];
    let mut rows = Vec::new();
    let mut wg = WorkloadGenerator::new(scale.seed.wrapping_add(777), FeatureRanges::training());
    for (qi, (&rate, &sel)) in rates.iter().flat_map(|r| sels.iter().map(move |s| (r, s))).enumerate() {
        use costream_query::datatypes::{DataType, TupleSchema};
        use costream_query::operators::*;
        let query = Query::new(
            vec![
                OpKind::Source(SourceSpec {
                    event_rate: rate,
                    schema: TupleSchema::new(vec![DataType::Int, DataType::Int, DataType::Double, DataType::String]),
                }),
                OpKind::Filter(FilterSpec {
                    function: FilterFunction::Less,
                    literal_type: DataType::Int,
                    selectivity: sel,
                }),
                OpKind::Sink,
            ],
            vec![(0, 1), (1, 2)],
        );
        let cluster = wg.cluster(5);
        let est_sels = vec![1.0, sel, 1.0];
        let seed = scale.seed.wrapping_add(2000 + qi as u64);

        let chosen = optimizer
            .optimize(&query, &cluster, &est_sels, Featurization::Full, seed)
            .best;
        let r = simulate(&query, &cluster, &chosen, &sim.with_seed(seed));
        let lp_costream = if r.metrics.success {
            r.metrics.processing_latency_ms
        } else {
            sim.duration_s * 1000.0
        };

        let run = run_monitoring(&query, &cluster, &sim, &MonitoringConfig::default(), seed);
        let slowdown = run.trajectory[0].processing_latency_ms / lp_costream.max(1e-3);
        let overhead = run.time_to_reach(lp_costream);
        println!(
            "rate {rate:>6.0} ev/s  sel {sel:.2}   slow-down {slowdown:>8.2}x   overhead {}",
            overhead.map_or("never competitive".to_string(), |t| format!("{t:.0}s"))
        );
        rows.push((rate, sel, slowdown, overhead));
    }
    Exp2bResult { rows }
}
