//! Exp 7 — ablation studies: Fig. 12 (featurization schemes) and Fig. 13
//! (message-passing schemes).

use crate::harness::Scale;
use costream::prelude::*;
use costream_dsps::CostMetric;

/// Results of Exp 7a: (scheme label, Q50, Q95) for E2E-latency.
pub struct Exp7aResult {
    /// One entry per featurization variant.
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs the featurization ablation (Fig. 12) on a shared train/test split.
pub fn run_7a(train: &Corpus, test: &Corpus, scale: &Scale) -> Exp7aResult {
    println!("\n== Fig. 12: featurization ablation for E2E-latency ==");
    println!("(paper: query-only 2.60, +HW nodes 2.22, full 1.37 — full featurization wins)");
    let mut rows = Vec::new();
    for (label, feat) in [
        ("Query nodes only", Featurization::QueryOnly),
        ("+ HW nodes", Featurization::HardwareNodes),
        ("+ HW features (full)", Featurization::Full),
    ] {
        let cfg = TrainConfig {
            epochs: scale.retrain_epochs,
            seed: scale.seed,
            featurization: feat,
            ..Default::default()
        };
        let model = train_metric(train, CostMetric::E2eLatency, &cfg);
        let s = model.evaluate_regression(test);
        println!("{label:<22} Q50 {:.2}  Q95 {:.2}", s.q50, s.q95);
        rows.push((label.to_string(), s.q50, s.q95));
    }
    Exp7aResult { rows }
}

/// One ablation row: (metric name, ours Q50/Q95, traditional Q50/Q95).
pub type AblationRow = (String, (f64, f64), (f64, f64));

/// Results of Exp 7b: per regression metric, (ours Q50, traditional Q50).
pub struct Exp7bResult {
    /// Per-metric comparison rows.
    pub rows: Vec<AblationRow>,
}

/// Runs the message-passing ablation (Fig. 13) on a shared split.
pub fn run_7b(train: &Corpus, test: &Corpus, scale: &Scale) -> Exp7bResult {
    println!("\n== Fig. 13: message-passing ablation (ours vs traditional) ==");
    println!("(paper: ours better on all three regression metrics, e.g. E2E 1.37 vs 1.60)");
    let mut rows = Vec::new();
    for metric in CostMetric::REGRESSION {
        let mut result = Vec::new();
        for scheme in [Scheme::Costream, Scheme::Traditional] {
            let cfg = TrainConfig {
                epochs: scale.retrain_epochs,
                seed: scale.seed,
                model: ModelConfig::default().with_scheme(scheme),
                ..Default::default()
            };
            let model = train_metric(train, metric, &cfg);
            let s = model.evaluate_regression(test);
            result.push((s.q50, s.q95));
        }
        println!(
            "{:<20} ours Q50 {:.2} Q95 {:.2}   traditional Q50 {:.2} Q95 {:.2}",
            metric.name(),
            result[0].0,
            result[0].1,
            result[1].0,
            result[1].1
        );
        rows.push((metric.name().to_string(), result[0], result[1]));
    }
    Exp7bResult { rows }
}
