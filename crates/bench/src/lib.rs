//! # costream-bench — the experiment harness
//!
//! Regenerates every table and figure of the Costream evaluation (§VII)
//! against the bundled substrates. See `DESIGN.md` for the per-experiment
//! index and `EXPERIMENTS.md` for recorded paper-vs-measured results.
//!
//! Run with `cargo run -p costream-bench --release --bin experiments -- all`
//! or name a single experiment (`exp1`, `exp2`, `exp3`, `exp4`, `exp5`,
//! `exp6`, `exp7`).

#![warn(missing_docs)]

pub mod exp1;
pub mod exp2;
pub mod exp34;
pub mod exp56;
pub mod exp7;
pub mod harness;
