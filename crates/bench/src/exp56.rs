//! Exp 5 (Table VI-A: unseen filter-chain query patterns; Fig. 11:
//! few-shot fine-tuning) and Exp 6 (Table VI-B: unseen real-world
//! benchmarks).

use crate::harness::{eval_ensemble_regression, evaluate_all, MetricRow, Models, Scale};
use costream::prelude::*;
use costream::train::fine_tune;
use costream_dsps::CostMetric;
use costream_query::benchmarks::BenchmarkQuery;
use costream_query::generator::WorkloadGenerator;
use costream_query::placement::sample_valid;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a corpus of filter-chain queries of a fixed chain length
/// (the unseen pattern of Exp 5).
pub fn filter_chain_corpus(chain_len: usize, n: usize, seed: u64) -> Corpus {
    let mut wg = WorkloadGenerator::new(seed, FeatureRanges::training());
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let workloads: Vec<_> = (0..n)
        .map(|_| {
            let q = wg.filter_chain_query(chain_len);
            let c = wg.cluster(4);
            let p = sample_valid(&q, &c, &mut rng)
                .unwrap_or_else(|| costream_query::placement::colocate_on_strongest(&q, &c));
            (q, c, p)
        })
        .collect();
    Corpus::from_workloads(workloads, seed.wrapping_add(2), &SimConfig::default())
}

/// Results of Exp 5a.
pub struct Exp5Result {
    /// (chain length, per-metric rows).
    pub by_chain: Vec<(usize, Vec<MetricRow>)>,
    /// Fig. 11: (chain length, throughput Q50 before, after fine-tuning).
    pub finetune: Vec<(usize, f64, f64)>,
}

/// Runs Exp 5a (Table VI-A) and Exp 5b (Fig. 11).
pub fn run_5(models: &Models, train: &Corpus, scale: &Scale) -> Exp5Result {
    println!("\n== Table VI-A: unseen query patterns (filter chains) ==");
    println!(
        "(paper: Costream Q50 1.6-5.5, degrading with chain length; Flat far worse, success prediction collapses)"
    );
    let mut by_chain = Vec::new();
    let mut chains: Vec<(usize, Corpus)> = Vec::new();
    for chain_len in [2usize, 3, 4] {
        let corpus = filter_chain_corpus(
            chain_len,
            scale.eval_queries,
            scale.seed.wrapping_add(500 + chain_len as u64),
        );
        let rows = evaluate_all(models, &corpus, scale.seed);
        println!("\n-- {chain_len}-filter chain --");
        for r in &rows {
            if r.costream.1.is_nan() {
                println!(
                    "  {:<20} Costream {:.1}%   Flat {:.1}%",
                    r.metric.name(),
                    r.costream.0 * 100.0,
                    r.flat.0 * 100.0
                );
            } else {
                println!(
                    "  {:<20} Costream Q50 {:.2} Q95 {:.2}   Flat Q50 {:.2} Q95 {:.2}",
                    r.metric.name(),
                    r.costream.0,
                    r.costream.1,
                    r.flat.0,
                    r.flat.1
                );
            }
        }
        by_chain.push((chain_len, rows));
        chains.push((chain_len, corpus));
    }

    // --- Fig. 11: few-shot fine-tuning of the throughput model ---
    println!("\n== Fig. 11: throughput model before/after fine-tuning on filter chains ==");
    println!("(paper: 4-filter Q50 improves 5.51 -> 1.61)");
    // Fine-tune on a small mixed-chain-length corpus (the paper's 3000
    // extra queries, scaled).
    let extra_n = (scale.corpus_size / 4).max(60);
    let mut extra = Corpus::default();
    for (i, chain_len) in [2usize, 3, 4].into_iter().enumerate() {
        let c = filter_chain_corpus(chain_len, extra_n / 3, scale.seed.wrapping_add(600 + i as u64));
        extra.items.extend(c.items);
    }
    let cfg = TrainConfig {
        epochs: scale.epochs,
        seed: scale.seed,
        ..Default::default()
    };
    let mut tuned = models.ensemble(CostMetric::Throughput).members()[0].clone();
    // Mix some original training data in to avoid catastrophic forgetting.
    let mut mixed = extra.clone();
    mixed.items.extend(train.items.iter().take(extra.len()).cloned());
    fine_tune(&mut tuned, &mixed, scale.retrain_epochs.max(10), 5e-4, &cfg);

    let mut finetune = Vec::new();
    for (chain_len, corpus) in &chains {
        let before = eval_ensemble_regression(models.ensemble(CostMetric::Throughput), corpus);
        let after = {
            let items = corpus.successful();
            let preds = tuned.predict_items(&items);
            QErrorSummary::of(
                &items
                    .iter()
                    .zip(&preds)
                    .map(|(i, &p)| (i.metrics.throughput, p))
                    .collect::<Vec<_>>(),
            )
        };
        println!(
            "{chain_len}-filter chain: Q50 {:.2} -> {:.2}   Q95 {:.2} -> {:.2}",
            before.q50, after.q50, before.q95, after.q95
        );
        finetune.push((*chain_len, before.q50, after.q50));
    }
    Exp5Result { by_chain, finetune }
}

/// Results of Exp 6.
pub struct Exp6Result {
    /// (benchmark name, per-metric rows).
    pub by_benchmark: Vec<(String, Vec<MetricRow>)>,
}

/// Builds the evaluation corpus for one real-world benchmark query: `n`
/// instances with random rates and random valid placements (§VII-F).
pub fn benchmark_corpus(bench: BenchmarkQuery, n: usize, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wg = WorkloadGenerator::new(seed.wrapping_add(1), FeatureRanges::training());
    let workloads: Vec<_> = (0..n)
        .map(|_| {
            let q = bench.build(&mut rng);
            let c = wg.cluster(4);
            let p = sample_valid(&q, &c, &mut rng)
                .unwrap_or_else(|| costream_query::placement::colocate_on_strongest(&q, &c));
            (q, c, p)
        })
        .collect();
    Corpus::from_workloads(workloads, seed.wrapping_add(2), &SimConfig::default())
}

/// Runs Exp 6 (Table VI-B): the models predict for the four real-world
/// benchmark queries they never saw.
pub fn run_6(models: &Models, scale: &Scale) -> Exp6Result {
    println!("\n== Table VI-B: unseen real-world benchmarks ==");
    println!("(paper: Costream Q50 1.4-3.7; Flat often orders of magnitude worse)");
    let mut by_benchmark = Vec::new();
    for (bi, bench) in BenchmarkQuery::ALL.into_iter().enumerate() {
        let corpus = benchmark_corpus(bench, scale.eval_queries, scale.seed.wrapping_add(700 + bi as u64));
        let rows = evaluate_all(models, &corpus, scale.seed);
        println!("\n-- {} --", bench.name());
        for r in &rows {
            if r.costream.1.is_nan() {
                println!(
                    "  {:<20} Costream {:.1}%   Flat {:.1}%",
                    r.metric.name(),
                    r.costream.0 * 100.0,
                    r.flat.0 * 100.0
                );
            } else {
                println!(
                    "  {:<20} Costream Q50 {:.2} Q95 {:.2}   Flat Q50 {:.2} Q95 {:.2}",
                    r.metric.name(),
                    r.costream.0,
                    r.costream.1,
                    r.flat.0,
                    r.flat.1
                );
            }
        }
        by_benchmark.push((bench.name().to_string(), rows));
    }
    Exp6Result { by_benchmark }
}

/// Fig. 1 headline: median E2E-latency q-error across the four scenarios.
pub fn print_fig1(seen: &[MetricRow], unseen_hw: &[MetricRow], exp5: &Exp5Result, exp6: &Exp6Result) {
    let le = |rows: &[MetricRow]| {
        rows.iter()
            .find(|r| r.metric == CostMetric::E2eLatency)
            .map(|r| (r.costream.0, r.flat.0))
            .unwrap_or((f64::NAN, f64::NAN))
    };
    let seen_v = le(seen);
    let hw_v = le(unseen_hw);
    let uq: Vec<(f64, f64)> = exp5.by_chain.iter().map(|(_, rows)| le(rows)).collect();
    let uq_v = (
        crate::harness::median(&uq.iter().map(|v| v.0).collect::<Vec<_>>()),
        crate::harness::median(&uq.iter().map(|v| v.1).collect::<Vec<_>>()),
    );
    let ub: Vec<(f64, f64)> = exp6.by_benchmark.iter().map(|(_, rows)| le(rows)).collect();
    let ub_v = (
        crate::harness::median(&ub.iter().map(|v| v.0).collect::<Vec<_>>()),
        crate::harness::median(&ub.iter().map(|v| v.1).collect::<Vec<_>>()),
    );
    println!("\n== Fig. 1: median E2E-latency q-error, Costream vs Flat Vector ==");
    println!("(paper: 1.37/13.28, 1.59/63.79, 2.17/444.03, 1.41/17.15)");
    for (label, v) in [
        ("Seen queries", seen_v),
        ("Unseen hardware", hw_v),
        ("Unseen queries", uq_v),
        ("Unseen benchmark", ub_v),
    ] {
        println!("{label:<18} Costream {:.2}   Flat Vector {:.2}", v.0, v.1);
    }
}
