//! Experiment runner: regenerates the paper's tables and figures.

use costream::prelude::*;
use costream_bench::{exp1, exp2, exp34, exp56, exp7, harness};
use harness::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let mut scale = if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper()
    };
    // Optional overrides: --corpus N, --epochs N, --k N, --eval N.
    let flag = |name: &str| -> Option<usize> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
    };
    if let Some(v) = flag("--corpus") {
        scale.corpus_size = v;
    }
    if let Some(v) = flag("--epochs") {
        scale.epochs = v;
    }
    if let Some(v) = flag("--k") {
        scale.ensemble_k = v;
    }
    if let Some(v) = flag("--eval") {
        scale.eval_queries = v;
    }

    eprintln!("scale: {scale:?}");
    let t0 = std::time::Instant::now();

    // Shared corpus + model bundle for the experiments that reuse the main
    // training distribution.
    let needs_models = matches!(which, "all" | "exp1" | "exp2" | "exp3" | "exp5" | "exp6");
    let (train, test, models) = if needs_models {
        eprintln!("generating corpus ({} traces) ...", scale.corpus_size);
        let corpus = Corpus::generate(
            scale.corpus_size,
            scale.seed,
            FeatureRanges::training(),
            &SimConfig::default(),
        );
        let (train, _val, test) = corpus.split(scale.seed);
        let models = harness::train_all(&train, &scale);
        (Some(train), Some(test), Some(models))
    } else {
        (None, None, None)
    };

    let mut fig1_parts: (
        Option<Vec<_>>,
        Option<Vec<_>>,
        Option<exp56::Exp5Result>,
        Option<exp56::Exp6Result>,
    ) = (None, None, None, None);

    if matches!(which, "all" | "exp1") {
        let r = exp1::run(models.as_ref().unwrap(), test.as_ref().unwrap(), &scale);
        fig1_parts.0 = Some(r.overall);
    }
    if matches!(which, "all" | "exp2") {
        exp2::run_2a(models.as_ref().unwrap(), &scale);
        exp2::run_2b(models.as_ref().unwrap(), &scale);
    }
    if matches!(which, "all" | "exp3") {
        let r = exp34::run_3(models.as_ref().unwrap(), &scale);
        fig1_parts.1 = Some(r);
    }
    if matches!(which, "all" | "exp4") {
        exp34::run_4(&scale);
    }
    if matches!(which, "all" | "exp5") {
        let r = exp56::run_5(models.as_ref().unwrap(), train.as_ref().unwrap(), &scale);
        fig1_parts.2 = Some(r);
    }
    if matches!(which, "all" | "exp6") {
        let r = exp56::run_6(models.as_ref().unwrap(), &scale);
        fig1_parts.3 = Some(r);
    }
    if matches!(which, "all" | "exp7") {
        // The ablations retrain from scratch; use a dedicated split.
        let corpus = Corpus::generate(
            scale.retrain_corpus.max(scale.corpus_size / 2),
            scale.seed.wrapping_add(70),
            FeatureRanges::training(),
            &SimConfig::default(),
        );
        let (train7, _, test7) = corpus.split(scale.seed);
        exp7::run_7a(&train7, &test7, &scale);
        exp7::run_7b(&train7, &test7, &scale);
    }

    if let (Some(seen), Some(hw), Some(e5), Some(e6)) = (&fig1_parts.0, &fig1_parts.1, &fig1_parts.2, &fig1_parts.3) {
        exp56::print_fig1(seen, hw, e5, e6);
    }

    eprintln!("\ntotal wall time: {:.0}s", t0.elapsed().as_secs_f64());
}
