//! Micro-benchmarks of the reproduction's hot paths: tensor kernels at the
//! exact shapes the GNN MLPs use, graph primitives, batch-plan
//! construction, simulator runs, joint-graph featurization, GNN inference
//! on both execution paths (tape vs. tape-free arena), ensemble training,
//! GBDT fitting and placement enumeration.
//!
//! The harness writes every result to `BENCH_micro.json` (op, ns/iter,
//! throughput) so the performance trajectory is tracked from PR 1 onward.

use costream::optimizer::enumerate_candidates;
use costream::prelude::*;
use costream::train::{prepare_training, train_prepared};
use costream_baselines::{Gbdt, GbdtConfig, Objective};
use costream_dsps::simulate;
use costream_nn::loss::mse;
use costream_nn::{Gradients, InferenceArena, Tensor};
use costream_query::generator::WorkloadGenerator;
use costream_query::selectivity::SelectivityEstimator;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| ((i as f32 * 0.137 + seed as f32 * 0.311).sin() * 1.3) - 0.2)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Matmul at the shapes the encoder/updater/readout MLPs actually run:
/// update MLPs see `n x 2h @ 2h x u`, encoders `n x feat @ feat x e`,
/// the readout head `g x h @ h x r`.
fn bench_matmul_kernels(c: &mut Criterion) {
    for &(m, k, n, tag) in &[
        (64usize, 64usize, 48usize, "updater_in"),
        (64, 48, 32, "updater_out"),
        (256, 64, 48, "updater_in_big"),
        (64, 21, 48, "encoder_agg"),
        (64, 32, 32, "readout_hidden"),
    ] {
        let a = pseudo_random(m, k, 1);
        let b = pseudo_random(k, n, 2);
        c.bench_function(&format!("matmul_{m}x{k}x{n}_{tag}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    let a = pseudo_random(64, 64, 3);
    let b = pseudo_random(64, 48, 4);
    let bias = pseudo_random(1, 48, 5);
    let mut out = Tensor::zeros(64, 48);
    c.bench_function("affine_relu_fused_64x64x48", |bch| {
        bch.iter(|| Tensor::affine_into(black_box(&a), black_box(&b), black_box(&bias), true, &mut out))
    });
    // Backward-pass kernels at the MLP shapes: `dW = x^T @ dpre` and
    // `dx = dpre @ W^T` for the small (64-node) and big (256-node) batch.
    c.bench_function("t_matmul_64x64_64x48", |bch| {
        bch.iter(|| black_box(&a).t_matmul(black_box(&b)))
    });
    let g = pseudo_random(64, 48, 6);
    let w = pseudo_random(64, 48, 7);
    c.bench_function("matmul_t_64x48_64x48", |bch| {
        bch.iter(|| black_box(&g).matmul_t(black_box(&w)))
    });
    let xb = pseudo_random(256, 64, 22);
    let gb = pseudo_random(256, 48, 23);
    c.bench_function("t_matmul_256x64_256x48", |bch| {
        bch.iter(|| black_box(&xb).t_matmul(black_box(&gb)))
    });
    let wb = pseudo_random(64, 48, 24);
    c.bench_function("matmul_t_256x48_64x48", |bch| {
        bch.iter(|| black_box(&gb).matmul_t(black_box(&wb)))
    });
}

/// Training-path benches: one full tape build + backward over a 16-graph
/// minibatch (the inner loop of `fit`), and one whole training epoch over
/// a 48-item corpus — the numbers the CI regression gate watches.
fn bench_training_path(c: &mut Criterion) {
    eprintln!("kernel tier: {}", costream_nn::kernel_tier());
    let corpus = Corpus::generate(16, 10, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig::default();
    let prepared = prepare_training(&corpus, CostMetric::ProcessingLatency, &cfg);
    let batch = &prepared.batches[0];
    let model = GnnModel::new(cfg.model);
    let mut grads = Gradients::for_store(model.store());
    let mut arena = InferenceArena::new();
    c.bench_function("tape_backward_batch16", |b| {
        b.iter(|| {
            let (tape, out) = model.forward_with_plan(&batch.plan);
            let loss = mse(tape.value(out), &batch.targets);
            grads.zero();
            tape.backward_with_arena(out, loss.seed, &mut grads, &mut arena);
            loss.loss
        })
    });

    let corpus48 = Corpus::generate(48, 9, FeatureRanges::training(), &SimConfig::default());
    let epoch_cfg = TrainConfig {
        epochs: 1,
        batch_size: 16,
        ..Default::default()
    };
    let prepared48 = prepare_training(&corpus48, CostMetric::Throughput, &epoch_cfg);
    c.bench_function("train_epoch", |b| {
        b.iter(|| train_prepared(&prepared48, CostMetric::Throughput, &epoch_cfg))
    });
}

/// Graph primitives over a realistic batched-node count (~1k rows, hidden
/// width 32).
fn bench_graph_primitives(c: &mut Criterion) {
    let x = pseudo_random(1024, 32, 8);
    let segments: Vec<usize> = (0..1024).map(|i| (i * 7919) % 128).collect();
    let mut out = Tensor::zeros(128, 32);
    c.bench_function("segment_sum_1024x32_to_128", |bch| {
        bch.iter(|| {
            out.fill_zero();
            black_box(&x).segment_sum_into(black_box(&segments), &mut out);
        })
    });
    let rows: Vec<usize> = (0..2048).map(|i| (i * 31) % 1024).collect();
    let segs: Vec<usize> = (0..2048).map(|i| (i * 13) % 128).collect();
    c.bench_function("gather_segment_sum_2048edges", |bch| {
        bch.iter(|| {
            out.fill_zero();
            black_box(&x).gather_segment_sum_into(black_box(&rows), black_box(&segs), &mut out);
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = WorkloadGenerator::new(1, FeatureRanges::training());
    let (q, cl, p) = g.workload_item();
    let cfg = SimConfig::default();
    c.bench_function("simulate_4min_query", |b| b.iter(|| simulate(&q, &cl, &p, &cfg)));
}

fn bench_featurize(c: &mut Criterion) {
    let mut g = WorkloadGenerator::new(2, FeatureRanges::training());
    let (q, cl, p) = g.workload_item();
    let sels = SelectivityEstimator::realistic(3).estimate_query(&q);
    c.bench_function("joint_graph_build", |b| {
        b.iter(|| JointGraph::build(&q, &cl, &p, &sels, Featurization::Full))
    });
}

/// GNN inference, both execution paths. `gnn_inference_batch64` is the
/// fast path the acceptance criterion tracks; `gnn_inference_batch64_tape`
/// is the tape-recording baseline it is measured against.
fn bench_inference(c: &mut Criterion) {
    let corpus = Corpus::generate(64, 4, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let model = train_metric(&corpus, CostMetric::ProcessingLatency, &cfg);
    let graphs: Vec<JointGraph> = corpus.items.iter().map(|i| i.graph(Featurization::Full)).collect();
    let one = &graphs[0];
    let refs: Vec<&JointGraph> = graphs.iter().collect();

    c.bench_function("gnn_inference_single_graph", |b| {
        b.iter(|| model.predict_graphs(&[one]))
    });
    c.bench_function("gnn_inference_batch64", |b| b.iter(|| model.predict_graphs(&refs)));
    let tape_plan = model.model().plan(&refs);
    c.bench_function("gnn_inference_batch64_tape", |b| {
        b.iter(|| {
            let (tape, out) = model.model().forward_with_plan(&tape_plan);
            tape.value(out).data().to_vec()
        })
    });
    // Plan reuse: the steady-state serving cost once plans are cached.
    let plan = model.model().plan(&refs);
    let mut arena = InferenceArena::new();
    c.bench_function("gnn_inference_batch64_cached_plan", |b| {
        b.iter(|| model.model().forward_inference(black_box(&plan), &mut arena))
    });
    c.bench_function("batch_plan_build_64", |b| b.iter(|| model.model().plan(&refs)));
}

/// Seed-varied ensemble training (members train in parallel from shared
/// batch plans).
fn bench_ensemble_train(c: &mut Criterion) {
    let corpus = Corpus::generate(48, 9, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 16,
        ..Default::default()
    };
    c.bench_function("ensemble_train_k4_48x3epochs", |b| {
        b.iter(|| Ensemble::train(&corpus, CostMetric::Throughput, &cfg, 4))
    });
}

fn bench_gbdt(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    let xs: Vec<Vec<f64>> = (0..500)
        .map(|_| (0..26).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0] * 3.0 + x[1]).collect();
    let cfg = GbdtConfig {
        n_trees: 30,
        ..Default::default()
    };
    c.bench_function("gbdt_fit_500x26", |b| {
        b.iter(|| Gbdt::fit(&xs, &ys, Objective::Regression, &cfg))
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = WorkloadGenerator::new(6, FeatureRanges::training());
    let q = g.query();
    let cl = g.cluster(6);
    c.bench_function("enumerate_12_candidates", |b| {
        b.iter(|| enumerate_candidates(&q, &cl, 12, 7))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul_kernels, bench_graph_primitives, bench_training_path, bench_simulator, bench_featurize, bench_inference, bench_ensemble_train, bench_gbdt, bench_enumeration
}
criterion_main!(benches);
