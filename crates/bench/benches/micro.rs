//! Micro-benchmarks of the reproduction's hot paths: tensor kernels at the
//! exact shapes the GNN MLPs use, graph primitives, batch-plan
//! construction, simulator runs, joint-graph featurization, GNN inference
//! on both execution paths (tape vs. tape-free arena), ensemble training,
//! GBDT fitting and placement enumeration.
//!
//! The harness writes every result to `BENCH_micro.json` (op, ns/iter,
//! throughput) so the performance trajectory is tracked from PR 1 onward.

use costream::optimizer::enumerate_candidates;
use costream::prelude::*;
use costream::train::{prepare_training, train_prepared};
use costream_baselines::{Gbdt, GbdtConfig, Objective};
use costream_dsps::simulate;
use costream_nn::loss::mse;
use costream_nn::{Gradients, InferenceArena, Tensor};
use costream_query::generator::WorkloadGenerator;
use costream_query::selectivity::SelectivityEstimator;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Tensor {
    let data = (0..rows * cols)
        .map(|i| ((i as f32 * 0.137 + seed as f32 * 0.311).sin() * 1.3) - 0.2)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Matmul at the shapes the encoder/updater/readout MLPs actually run:
/// update MLPs see `n x 2h @ 2h x u`, encoders `n x feat @ feat x e`,
/// the readout head `g x h @ h x r`.
fn bench_matmul_kernels(c: &mut Criterion) {
    for &(m, k, n, tag) in &[
        (64usize, 64usize, 48usize, "updater_in"),
        (64, 48, 32, "updater_out"),
        (256, 64, 48, "updater_in_big"),
        (64, 21, 48, "encoder_agg"),
        (64, 32, 32, "readout_hidden"),
    ] {
        let a = pseudo_random(m, k, 1);
        let b = pseudo_random(k, n, 2);
        c.bench_function(&format!("matmul_{m}x{k}x{n}_{tag}"), |bch| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    let a = pseudo_random(64, 64, 3);
    let b = pseudo_random(64, 48, 4);
    let bias = pseudo_random(1, 48, 5);
    let mut out = Tensor::zeros(64, 48);
    c.bench_function("affine_relu_fused_64x64x48", |bch| {
        bch.iter(|| Tensor::affine_into(black_box(&a), black_box(&b), black_box(&bias), true, &mut out))
    });
    // Backward-pass kernels at the MLP shapes: `dW = x^T @ dpre` and
    // `dx = dpre @ W^T` for the small (64-node) and big (256-node) batch.
    c.bench_function("t_matmul_64x64_64x48", |bch| {
        bch.iter(|| black_box(&a).t_matmul(black_box(&b)))
    });
    let g = pseudo_random(64, 48, 6);
    let w = pseudo_random(64, 48, 7);
    c.bench_function("matmul_t_64x48_64x48", |bch| {
        bch.iter(|| black_box(&g).matmul_t(black_box(&w)))
    });
    let xb = pseudo_random(256, 64, 22);
    let gb = pseudo_random(256, 48, 23);
    c.bench_function("t_matmul_256x64_256x48", |bch| {
        bch.iter(|| black_box(&xb).t_matmul(black_box(&gb)))
    });
    let wb = pseudo_random(64, 48, 24);
    c.bench_function("matmul_t_256x48_64x48", |bch| {
        bch.iter(|| black_box(&gb).matmul_t(black_box(&wb)))
    });
}

/// Training-path benches: one full tape build + backward over a 16-graph
/// minibatch (the inner loop of `fit`), and one whole training epoch over
/// a 48-item corpus — the numbers the CI regression gate watches.
fn bench_training_path(c: &mut Criterion) {
    eprintln!("kernel tier: {}", costream_nn::kernel_tier());
    let corpus = Corpus::generate(16, 10, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig::default();
    let prepared = prepare_training(&corpus, CostMetric::ProcessingLatency, &cfg);
    let batch = &prepared.batches[0];
    let model = GnnModel::new(cfg.model);
    let mut grads = Gradients::for_store(model.store());
    let mut arena = InferenceArena::new();
    c.bench_function("tape_backward_batch16", |b| {
        b.iter(|| {
            let (tape, out) = model.forward_with_plan(&batch.plan);
            let loss = mse(tape.value(out), &batch.targets);
            grads.zero();
            tape.backward_with_arena(out, loss.seed, &mut grads, &mut arena);
            loss.loss
        })
    });

    let corpus48 = Corpus::generate(48, 9, FeatureRanges::training(), &SimConfig::default());
    let epoch_cfg = TrainConfig {
        epochs: 1,
        batch_size: 16,
        ..Default::default()
    };
    let prepared48 = prepare_training(&corpus48, CostMetric::Throughput, &epoch_cfg);
    c.bench_function("train_epoch", |b| {
        b.iter(|| train_prepared(&prepared48, CostMetric::Throughput, &epoch_cfg))
    });
}

/// Graph primitives over a realistic batched-node count (~1k rows, hidden
/// width 32).
fn bench_graph_primitives(c: &mut Criterion) {
    let x = pseudo_random(1024, 32, 8);
    let segments: Vec<usize> = (0..1024).map(|i| (i * 7919) % 128).collect();
    let mut out = Tensor::zeros(128, 32);
    c.bench_function("segment_sum_1024x32_to_128", |bch| {
        bch.iter(|| {
            out.fill_zero();
            black_box(&x).segment_sum_into(black_box(&segments), &mut out);
        })
    });
    let rows: Vec<usize> = (0..2048).map(|i| (i * 31) % 1024).collect();
    let segs: Vec<usize> = (0..2048).map(|i| (i * 13) % 128).collect();
    c.bench_function("gather_segment_sum_2048edges", |bch| {
        bch.iter(|| {
            out.fill_zero();
            black_box(&x).gather_segment_sum_into(black_box(&rows), black_box(&segs), &mut out);
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = WorkloadGenerator::new(1, FeatureRanges::training());
    let (q, cl, p) = g.workload_item();
    let cfg = SimConfig::default();
    c.bench_function("simulate_4min_query", |b| b.iter(|| simulate(&q, &cl, &p, &cfg)));
}

fn bench_featurize(c: &mut Criterion) {
    let mut g = WorkloadGenerator::new(2, FeatureRanges::training());
    let (q, cl, p) = g.workload_item();
    let sels = SelectivityEstimator::realistic(3).estimate_query(&q);
    c.bench_function("joint_graph_build", |b| {
        b.iter(|| JointGraph::build(&q, &cl, &p, &sels, Featurization::Full))
    });
}

/// GNN inference, both execution paths. `gnn_inference_batch64` is the
/// fast path the acceptance criterion tracks; `gnn_inference_batch64_tape`
/// is the tape-recording baseline it is measured against.
fn bench_inference(c: &mut Criterion) {
    let corpus = Corpus::generate(64, 4, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let model = train_metric(&corpus, CostMetric::ProcessingLatency, &cfg);
    let graphs: Vec<JointGraph> = corpus.items.iter().map(|i| i.graph(Featurization::Full)).collect();
    let one = &graphs[0];
    let refs: Vec<&JointGraph> = graphs.iter().collect();

    c.bench_function("gnn_inference_single_graph", |b| {
        b.iter(|| model.predict_graphs(&[one]))
    });
    c.bench_function("gnn_inference_batch64", |b| b.iter(|| model.predict_graphs(&refs)));
    let tape_plan = model.model().plan(&refs);
    c.bench_function("gnn_inference_batch64_tape", |b| {
        b.iter(|| {
            let (tape, out) = model.model().forward_with_plan(&tape_plan);
            tape.value(out).data().to_vec()
        })
    });
    // Plan reuse: the steady-state serving cost once plans are cached.
    let plan = model.model().plan(&refs);
    let mut arena = InferenceArena::new();
    c.bench_function("gnn_inference_batch64_cached_plan", |b| {
        b.iter(|| model.model().forward_inference(black_box(&plan), &mut arena))
    });
    c.bench_function("batch_plan_build_64", |b| b.iter(|| model.model().plan(&refs)));
}

/// Member-fused vs sequential ensemble inference (k = 3) over one cached
/// 64-graph chunk plan — the serving worker's steady-state scoring cost.
/// `ensemble_fused_batch64` is the CI-gated number; the acceptance
/// criterion measures it against `ensemble_sequential_batch64` (the
/// per-member loop the workers ran before fusion — expect ≥ 1.5x on one
/// core). The opt-in int8 view is recorded alongside; it trades some
/// time for weight footprint (weights dequantize on the fly into the
/// f32 FMA kernel), so do not expect it to beat the exact fused path.
fn bench_ensemble_fused(c: &mut Criterion) {
    let corpus = Corpus::generate(64, 13, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let ensemble = Ensemble::train(&corpus, CostMetric::ProcessingLatency, &cfg, 3);
    let graphs: Vec<JointGraph> = corpus.items.iter().map(|i| i.graph(ensemble.featurization())).collect();
    let refs: Vec<&JointGraph> = graphs.iter().collect();
    let plans = vec![ensemble.members()[0].model().plan(&refs)];
    let fused = ensemble.fused();
    let int8 = ensemble.fused_calibrated(&plans);
    let mut arena = InferenceArena::new();
    c.bench_function("ensemble_sequential_batch64", |b| {
        b.iter(|| ensemble.predict_plans_arena(black_box(&plans), &mut arena))
    });
    c.bench_function("ensemble_fused_batch64", |b| {
        b.iter(|| fused.predict_plans_arena(black_box(&plans), &mut arena))
    });
    c.bench_function("ensemble_fused_int8_batch64", |b| {
        b.iter(|| int8.predict_plans_arena(black_box(&plans), &mut arena))
    });
}

/// Seed-varied ensemble training (members train in parallel from shared
/// batch plans).
fn bench_ensemble_train(c: &mut Criterion) {
    let corpus = Corpus::generate(48, 9, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig {
        epochs: 3,
        batch_size: 16,
        ..Default::default()
    };
    c.bench_function("ensemble_train_k4_48x3epochs", |b| {
        b.iter(|| Ensemble::train(&corpus, CostMetric::Throughput, &cfg, 4))
    });
}

fn bench_gbdt(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    let xs: Vec<Vec<f64>> = (0..500)
        .map(|_| (0..26).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0] * 3.0 + x[1]).collect();
    let cfg = GbdtConfig {
        n_trees: 30,
        ..Default::default()
    };
    c.bench_function("gbdt_fit_500x26", |b| {
        b.iter(|| Gbdt::fit(&xs, &ys, Objective::Regression, &cfg))
    });
}

/// Load statistics for one serving configuration.
struct LoadStats {
    /// Wall-clock nanoseconds per request across all clients.
    ns_per_request: f64,
    /// Median request latency (ns), submission to response.
    p50_ns: f64,
    /// 99th-percentile request latency (ns), submission to response.
    p99_ns: f64,
}

fn aggregate(mut latencies: Vec<u64>, measure: std::time::Duration) -> LoadStats {
    // Zero completions would fabricate plausible-looking numbers (one
    // "request" per window, 0 ns percentiles); fail loudly instead.
    assert!(
        !latencies.is_empty(),
        "load generator completed no requests in the measurement window"
    );
    latencies.sort_unstable();
    let n = latencies.len();
    LoadStats {
        ns_per_request: measure.as_nanos() as f64 / n as f64,
        p50_ns: latencies.get(n / 2).copied().unwrap_or(0) as f64,
        p99_ns: latencies.get(((n * 99) / 100).min(n - 1)).copied().unwrap_or(0) as f64,
    }
}

/// Drives `clients` strictly synchronous client threads (one request in
/// flight each) against `score` for `measure` (after `warmup`), each
/// walking `pool` from its own offset.
fn run_sync_load(
    clients: usize,
    pool: &[costream::graph::JointGraph],
    warmup: std::time::Duration,
    measure: std::time::Duration,
    score: &(impl Fn(&costream::graph::JointGraph) -> f64 + Sync),
) -> LoadStats {
    use std::time::Instant;
    let latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut i = c * 7;
                    let warm_end = Instant::now() + warmup;
                    while Instant::now() < warm_end {
                        black_box(score(&pool[i % pool.len()]));
                        i += 1;
                    }
                    let mut lats = Vec::new();
                    let end = Instant::now() + measure;
                    while Instant::now() < end {
                        let t0 = Instant::now();
                        black_box(score(&pool[i % pool.len()]));
                        lats.push(t0.elapsed().as_nanos() as u64);
                        i += 1;
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    aggregate(latencies, measure)
}

/// Drives `clients` serving clients, each keeping up to `depth` requests
/// in flight (`depth == 1` is the strict closed loop). Pipelining is the
/// natural client shape for a serving layer — e.g. the placement
/// optimizer submits every candidate of a query at once and collects the
/// scores — and is what lets coalesced batches grow past the client
/// count. Latency is measured per request, submission to response.
fn run_serve_load(
    clients: usize,
    depth: usize,
    pool: &[std::sync::Arc<costream::graph::JointGraph>],
    warmup: std::time::Duration,
    measure: std::time::Duration,
    client_handle: &costream_serve::ScoreClient,
) -> LoadStats {
    use std::collections::VecDeque;
    use std::sync::Arc;
    use std::time::Instant;
    let latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let handle = client_handle.clone();
                s.spawn(move || {
                    let mut i = c * 7;
                    let submit = |i: &mut usize| {
                        let g = Arc::clone(&pool[*i % pool.len()]);
                        *i += 1;
                        (Instant::now(), handle.submit(g).expect("queue within bounds"))
                    };
                    let mut pending: VecDeque<_> = VecDeque::with_capacity(depth);
                    let warm_end = Instant::now() + warmup;
                    while Instant::now() < warm_end {
                        while pending.len() < depth {
                            pending.push_back(submit(&mut i));
                        }
                        let (_, p) = pending.pop_front().expect("depth >= 1");
                        black_box(p.wait().expect("service alive"));
                    }
                    let mut lats = Vec::new();
                    let end = Instant::now() + measure;
                    while Instant::now() < end {
                        while pending.len() < depth {
                            pending.push_back(submit(&mut i));
                        }
                        let (t0, p) = pending.pop_front().expect("depth >= 1");
                        black_box(p.wait().expect("service alive"));
                        lats.push(t0.elapsed().as_nanos() as u64);
                    }
                    // Drain the tail outside the measured window.
                    for (_, p) in pending {
                        let _ = p.wait();
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    aggregate(latencies, measure)
}

/// The serving layer under load: requests/s and p50/p99 latency at
/// several client counts, against the synchronous single-request path as
/// the baseline. `serve_throughput` (8 concurrent clients, each
/// pipelining up to 4 candidate scores like the placement optimizer
/// does) is the number the CI regression gate watches; the acceptance
/// target is ≥ 3x the 8-client synchronous throughput. The strict
/// one-in-flight closed loop is recorded alongside as
/// `serve_throughput_depth1`.
///
/// Workload: one *hot query shape* — a recurring graph topology whose
/// feature values (selectivity estimates) shift per request — the
/// serving sweet spot the topology-keyed plan cache is built for.
fn bench_serving(c: &mut Criterion) {
    use costream_serve::{ScoringService, ServeConfig};
    use std::sync::Arc;
    use std::time::Duration;
    let _ = c; // measured with a wall-clock load generator, not Bencher

    let corpus = Corpus::generate(48, 12, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let ensemble = Ensemble::train(&corpus, CostMetric::ProcessingLatency, &cfg, 3);

    // Hot-shape pool: one placed query, 64 feature variants.
    let mut gen = WorkloadGenerator::new(11, FeatureRanges::training());
    let (query, cluster, placement) = gen.workload_item();
    let pool: Vec<JointGraph> = (0..64)
        .map(|i| {
            let sels = SelectivityEstimator::realistic(100 + i).estimate_query(&query);
            JointGraph::build(&query, &cluster, &placement, &sels, Featurization::Full)
        })
        .collect();
    let shared_pool: Vec<Arc<JointGraph>> = pool.iter().cloned().map(Arc::new).collect();

    let warmup = Duration::from_millis(250);
    let measure = Duration::from_secs(1);

    // Synchronous single-request baseline: every client pays per-call
    // plan construction and single-graph kernel launches, one request in
    // flight each (that path has nothing to pipeline into).
    let mut sync_8_ns = f64::NAN;
    for &clients in &[1usize, 8] {
        let stats = run_sync_load(clients, &pool, warmup, measure, &|g| ensemble.predict_graphs(&[g])[0]);
        let suffix = if clients == 1 { "1client" } else { "8clients" };
        criterion::register_result(&format!("sync_throughput_{suffix}"), stats.ns_per_request);
        if clients == 8 {
            sync_8_ns = stats.ns_per_request;
        }
    }

    for &(clients, depth, suffix) in &[
        (1usize, 1usize, "_1client"),
        (4, 4, "_4clients"),
        (8, 1, "_depth1"),
        (8, 4, ""),
    ] {
        let service = ScoringService::start(ensemble.clone(), ServeConfig::default());
        let client = service.client();
        let stats = run_serve_load(clients, depth, &shared_pool, warmup, measure, &client);
        criterion::register_result(&format!("serve_throughput{suffix}"), stats.ns_per_request);
        criterion::register_result(&format!("serve_p50_latency{suffix}"), stats.p50_ns);
        criterion::register_result(&format!("serve_p99_latency{suffix}"), stats.p99_ns);
        let sstats = service.stats();
        eprintln!(
            "  {clients}-client (depth {depth}) serving: mean batch {:.1}, plan cache {} hits / {} misses (hit rate {:.0}%)",
            sstats.mean_batch(),
            sstats.plan_cache_hits,
            sstats.plan_cache_misses,
            100.0 * sstats.plan_cache_hit_rate(),
        );
        if suffix.is_empty() || suffix == "_depth1" {
            eprintln!(
                "  8-client depth-{depth} speedup vs synchronous single-request path: {:.2}x",
                sync_8_ns / stats.ns_per_request
            );
        }
    }
}

/// The network front-end under sustained mixed-lane wire load: a
/// million pipelined requests (`COSTREAM_FRONT_REQUESTS` to resize)
/// split over interactive and bulk connections against a 2-shard
/// front-end, with the loadgen's chaos thread injecting connection
/// faults (malformed frames, oversized headers, mid-frame disconnects)
/// the whole time. Records per-lane p50/p99 plus the per-window latency
/// trajectories (`front_{lane}_p{50,99}_w{i}`); `front_interactive_p99`
/// is the CI-gated QoS number (behind the core-count guard — a
/// multi-connection threaded server's tail is runner-class-dependent).
fn bench_front_load(c: &mut Criterion) {
    use costream_front::loadgen::{self, LoadgenConfig};
    use costream_front::{FrontConfig, Frontend};
    use costream_serve::ServeConfig;
    use std::time::Duration;
    let _ = c; // measured with a wall-clock load generator, not Bencher

    let corpus = Corpus::generate(48, 12, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig {
        epochs: 2,
        ..Default::default()
    };
    let ensemble = Ensemble::train(&corpus, CostMetric::ProcessingLatency, &cfg, 3);

    // Mixed-shape pool: several query topologies × feature variants, so
    // the signature routing actually spreads shapes over the shards
    // while each shard's plan cache stays hot on its own subset.
    let mut gen = WorkloadGenerator::new(23, FeatureRanges::training());
    let mut pool: Vec<JointGraph> = Vec::new();
    for _ in 0..4 {
        let (query, cluster, placement) = gen.workload_item();
        for i in 0..16 {
            let sels = SelectivityEstimator::realistic(200 + i).estimate_query(&query);
            pool.push(JointGraph::build(
                &query,
                &cluster,
                &placement,
                &sels,
                Featurization::Full,
            ));
        }
    }

    let requests: u64 = std::env::var("COSTREAM_FRONT_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let mut serve = ServeConfig::default();
    serve.workers = serve.workers.max(1);
    let front = Frontend::start(
        ensemble,
        FrontConfig {
            shards: 2,
            serve,
            ..FrontConfig::default()
        },
    )
    .expect("bind front-end");

    let report = loadgen::run(
        front.addr(),
        &pool,
        &LoadgenConfig {
            requests,
            faults: true,
            ..LoadgenConfig::default()
        },
    );

    for (lane, r) in [("interactive", &report.interactive), ("bulk", &report.bulk)] {
        criterion::register_result(&format!("front_{lane}_p50"), r.p50_ns as f64);
        criterion::register_result(&format!("front_{lane}_p99"), r.p99_ns as f64);
        for (w, (&p50, &p99)) in r.window_p50_ns.iter().zip(&r.window_p99_ns).enumerate() {
            criterion::register_result(&format!("front_{lane}_p50_w{w}"), p50 as f64);
            criterion::register_result(&format!("front_{lane}_p99_w{w}"), p99 as f64);
        }
        eprintln!(
            "  front {lane}: {} sent, {} ok, {} overloaded, {} shed, {} other; p50 {:.0} µs, p99 {:.0} µs",
            r.sent,
            r.ok,
            r.overloaded,
            r.shed,
            r.other_errors,
            r.p50_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
        );
    }
    let stats = front.stats();
    eprintln!(
        "  front: {} requests in {:.2?} ({:.0} req/s), {} chaos rounds absorbed ({} bad frames, {} oversized, {} disconnects), {} worker respawns",
        report.interactive.sent + report.bulk.sent,
        report.elapsed,
        (report.interactive.sent + report.bulk.sent) as f64 / report.elapsed.as_secs_f64(),
        report.chaos_rounds,
        stats.bad_requests,
        stats.oversized,
        stats.disconnects,
        stats.worker_respawns(),
    );
    let drain = front.shutdown(Duration::from_secs(30));
    assert!(drain.drained, "bench front-end must drain cleanly");
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = WorkloadGenerator::new(6, FeatureRanges::training());
    let q = g.query();
    let cl = g.cluster(6);
    c.bench_function("enumerate_12_candidates", |b| {
        b.iter(|| enumerate_candidates(&q, &cl, 12, 7))
    });
}

/// The placement-search strategies at an *equal scoring budget*: wall
/// time per full search (`optimizer_search_{random,beam,local}` — the
/// LocalSearch variant is the CI-gated number) plus the quality each
/// strategy buys for that budget, recorded as
/// `optimizer_search_{...}_best_cost` metrics (predicted target cost of
/// the chosen placement, lower is better — exported under the JSON
/// `metrics` key with an explicit unit so the cost-vs-candidates-scored
/// trajectory is tracked in BENCH_micro.json without masquerading as a
/// timing).
fn bench_optimizer_search(c: &mut Criterion) {
    use costream::search::{
        BeamSearch, EnsembleScorer, LocalSearch, PlacementSearch, RandomEnumeration, SearchProblem,
    };

    // Trained far enough that predicted costs spread over placements —
    // the recorded best-cost trajectory is meaningless off a constant
    // predictor (epochs 2 would do that).
    let corpus = Corpus::generate(120, 14, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig {
        epochs: 10,
        ..Default::default()
    };
    let target = Ensemble::train(&corpus, CostMetric::ProcessingLatency, &cfg, 2);
    let success = Ensemble::train(&corpus, CostMetric::Success, &cfg, 2);
    let backpressure = Ensemble::train(&corpus, CostMetric::Backpressure, &cfg, 2);
    let scorer = EnsembleScorer::new(&target, &success, &backpressure);

    // A wide placement space (3-way join, 8 heterogeneous hosts) at a
    // tight budget, so strategy quality differences are visible in the
    // recorded best-cost numbers.
    let mut gen = WorkloadGenerator::new(15, FeatureRanges::training());
    let query = gen.query_of(costream_query::generator::QueryTemplate::ThreeWayJoin);
    let cluster = gen.cluster(8);
    let sels = SelectivityEstimator::realistic(16).estimate_query(&query);
    let problem = SearchProblem {
        query: &query,
        cluster: &cluster,
        est_sels: &sels,
        featurization: Featurization::Full,
    };

    const BUDGET: usize = 32;
    const SEED: u64 = 17;
    let strategies: [&dyn PlacementSearch; 3] = [&RandomEnumeration, &BeamSearch::default(), &LocalSearch::default()];
    let mut best_costs = Vec::new();
    for strategy in strategies {
        c.bench_function(&format!("optimizer_search_{}", strategy.name()), |b| {
            b.iter(|| strategy.search(&problem, &scorer, BUDGET, SEED))
        });
        let r = strategy.search(&problem, &scorer, BUDGET, SEED);
        let best = r.best_evaluation().predicted_cost;
        criterion::register_metric(
            &format!("optimizer_search_{}_best_cost", strategy.name()),
            best,
            "predicted_ms",
        );
        eprintln!(
            "  {:>6}: {} candidates scored -> best predicted cost {:.2}",
            strategy.name(),
            r.candidates.len(),
            best
        );
        best_costs.push(best);
    }
    eprintln!(
        "  equal-budget check (<= random {:.2}): beam {:.2}, local {:.2}",
        best_costs[0], best_costs[1], best_costs[2]
    );
}

/// The learned co-run interference model's measure → fit loop: wall
/// time of one ridge fit over the default corpus (`interference_fit`),
/// plus its predictive quality on a **held-out** corpus generated from
/// a disjoint seed. The gated metric is `interference_fit_qerror` —
/// the learned median q-error on held-out co-run inflation — and the
/// proportional-share heuristic's q-error on the same set is recorded
/// ungated as the reference the learned model must stay below.
fn bench_interference(c: &mut Criterion) {
    use costream::interference::{proportional_inflation, InterferenceModel};
    use costream::qerror::QErrorSummary;
    use costream_dsps::corun::{generate_corpus, CorunConfig};

    let train = generate_corpus(&CorunConfig::default());
    let held_out = generate_corpus(&CorunConfig {
        seed: 1007,
        ..CorunConfig::default()
    });
    c.bench_function("interference_fit", |b| {
        b.iter(|| black_box(InterferenceModel::fit(black_box(&train), 1.0)))
    });

    let model = InterferenceModel::fit(&train, 1.0);
    let learned: Vec<(f64, f64)> = held_out
        .iter()
        .map(|s| (s.inflation, model.predict_inflation_raw(&s.own, &s.ext, &s.host)))
        .collect();
    let proportional: Vec<(f64, f64)> = held_out
        .iter()
        .map(|s| (s.inflation, proportional_inflation(&s.own, &s.ext)))
        .collect();
    let lq = QErrorSummary::of(&learned);
    let pq = QErrorSummary::of(&proportional);
    criterion::register_metric("interference_fit_qerror", lq.q50, "q50");
    criterion::register_metric("interference_proportional_qerror", pq.q50, "q50");
    eprintln!(
        "  interference pricing on {} held-out co-run samples ({} train): learned {lq} vs proportional {pq}",
        held_out.len(),
        train.len()
    );
}

/// Multi-query co-placement at an *equal scoring budget*: wall time of
/// one joint LocalSearch over 3 queries on an 8-host cluster
/// (`joint_placement`), plus the quality comparison the subsystem exists
/// for — the best contention-aware **total** predicted cost found by the
/// joint search versus the combination of independent per-query searches
/// (each side spends `budget × n_queries` graph predictions). Both
/// totals are recorded as `metrics` entries
/// (`joint_placement_{joint,independent}_total_cost`); the joint one is
/// CI-gated so co-placement quality can only regress visibly. Contended
/// hosts are priced by the **learned interference model** (fitted on
/// the deterministic default co-run corpus), so the gated number tracks
/// the shipping configuration, not the proportional-share fallback.
fn bench_joint_placement(c: &mut Criterion) {
    use costream::interference::InterferenceModel;
    use costream::joint::{JointPlacementSearch, JointQuery, JointSearchProblem};
    use costream::search::{LocalSearch, PlacementSearch, SearchProblem};
    use costream_dsps::corun::{generate_corpus, CorunConfig};
    use costream_query::joint::JointPlacement;

    let corpus = costream::test_fixtures::corpus(120, 14);
    let trio = costream::test_fixtures::trio(&corpus, 10, 2);
    let scorer = trio.scorer();

    // Contention priced by the learned interference model (the shipping
    // configuration), fitted on a deterministic co-run corpus.
    let model = InterferenceModel::fit(&generate_corpus(&CorunConfig::default()), 1.0);
    // Three queries contending for one 8-host cluster.
    let (queries, cluster, sels) = costream::test_fixtures::multi_query_workload(18, 3, 8);
    let jqs = JointQuery::zip(&queries, &sels);
    let problem = JointSearchProblem {
        queries: &jqs,
        cluster: &cluster,
        featurization: Featurization::Full,
        interference: Some(&model),
    };

    const BUDGET: usize = 16;
    const SEED: u64 = 20;
    // Independent: each query searched alone, then deployed together.
    let combined = JointPlacement::new(
        cluster.len(),
        queries
            .iter()
            .zip(&sels)
            .map(|(q, s)| {
                let sp = SearchProblem {
                    query: q,
                    cluster: &cluster,
                    est_sels: s,
                    featurization: Featurization::Full,
                };
                LocalSearch::default().search(&sp, &scorer, BUDGET, SEED).best
            })
            .collect(),
    );

    let strategy = LocalSearch::default();
    c.bench_function("joint_placement", |b| {
        b.iter(|| strategy.search_joint_seeded(&problem, &scorer, std::slice::from_ref(&combined), BUDGET, SEED))
    });
    let r = strategy.search_joint_seeded(&problem, &scorer, std::slice::from_ref(&combined), BUDGET, SEED);
    let independent_total = r.candidates[0].total_cost();
    let joint_total = r.best_evaluation().total_cost();
    criterion::register_metric("joint_placement_joint_total_cost", joint_total, "predicted_ms_total");
    criterion::register_metric(
        "joint_placement_independent_total_cost",
        independent_total,
        "predicted_ms_total",
    );
    eprintln!(
        "  joint co-placement: {} joint candidates ({} graph predictions) -> total {:.2} vs independent {:.2} ({:.1}% better)",
        r.candidates.len(),
        r.candidates.len() * queries.len(),
        joint_total,
        independent_total,
        100.0 * (1.0 - joint_total / independent_total)
    );
}

/// Replays a drift scenario through the runtime elasticity loop: the
/// adaptive controller (detect → re-plan → migrate) against the
/// deploy-once static baseline, on the same drifting world. The gated
/// metric is the adaptive run's total cost (observed + migration, ms) —
/// a regression means the loop stopped recovering from drift.
fn bench_replay_drift(c: &mut Criterion) {
    use costream::adaptive::{run_adaptive, run_static, AdaptiveConfig, AdaptiveProblem};
    use costream::joint::MigrationCostModel;
    use costream::test_fixtures;
    use costream_dsps::{DriftEvent, DriftScenario};
    use costream_query::joint::JointPlacement;
    use costream_query::placement::Placement;

    let corpus = test_fixtures::corpus(48, 21);
    let fx = test_fixtures::trio(&corpus, 2, 2);
    let scorer = fx.scorer();
    let (queries, cluster, sels) = test_fixtures::multi_query_workload(205, 2, 5);
    // Deploy each query co-located on its own mid-tier host (healthy at
    // deploy time), then lose query 0's host seventy seconds in.
    let mut ranked: Vec<usize> = (0..cluster.len()).collect();
    ranked.sort_by(|&a, &b| {
        cluster
            .host(b)
            .capability_score()
            .total_cmp(&cluster.host(a).capability_score())
            .then(a.cmp(&b))
    });
    let initial = JointPlacement::new(
        cluster.len(),
        vec![
            Placement::new(vec![ranked[1]; queries[0].len()]),
            Placement::new(vec![ranked[2]; queries[1].len()]),
        ],
    );
    let scenario = DriftScenario::new(vec![DriftEvent::HostLoss {
        host: ranked[1],
        at_s: 70.0,
    }]);
    let problem = AdaptiveProblem {
        queries: &queries,
        est_sels: &sels,
        cluster: &cluster,
        featurization: Featurization::Full,
    };
    let mut cfg = AdaptiveConfig::default();
    cfg.replan.budget = 16;
    cfg.replan.sample_size = 6;
    cfg.replan.migration = MigrationCostModel {
        pause_ms_per_op: 50.0,
        per_op_overhead_bytes: 256.0 * 1024.0,
    };

    c.bench_function("replay_drift", |b| {
        b.iter(|| run_adaptive(&problem, &scorer, initial.clone(), &scenario, &cfg, 11))
    });

    let adaptive = run_adaptive(&problem, &scorer, initial.clone(), &scenario, &cfg, 11);
    let fixed = run_static(&problem, &scorer, initial.clone(), &scenario, &cfg, 11);
    criterion::register_metric(
        "replay_drift_adaptive_total_cost",
        adaptive.total_cost_ms(),
        "observed_ms_total",
    );
    criterion::register_metric(
        "replay_drift_static_total_cost",
        fixed.total_cost_ms(),
        "observed_ms_total",
    );
    eprintln!(
        "  drift replay (host loss): adaptive {:.0} ms total ({} firing(s), {} migration(s), {:.0} ms migration cost) vs static {:.0} ms ({:.1}% better)",
        adaptive.total_cost_ms(),
        adaptive.n_firings,
        adaptive.n_migrations,
        adaptive.total_migration_ms(),
        fixed.total_cost_ms(),
        100.0 * (1.0 - adaptive.total_cost_ms() / fixed.total_cost_ms())
    );
}

/// Wide-cluster placement search at 256 hosts, single-query and 3-query
/// joint at an equal scoring budget. Besides the wall-time entries
/// (`search_wide_256_local`, `search_wide_256_joint`), records:
///
/// * `search_wide_256_candidates_per_s` — incremental validity checks
///   per second of the full parallel search (higher is better; the
///   CI-gated search-throughput number);
/// * `search_wide_256_speedup` — sequential wall time over parallel
///   wall time for the bitwise-identical search (absolute-gated ≥ 3x on
///   runners with enough cores; ~1x on single-core machines, where the
///   rayon shim degenerates to the serial walk).
///
/// The parallel results are asserted bitwise equal to the sequential
/// walk before anything is recorded — the speedup may never come from
/// changed search behavior.
fn bench_search_wide(c: &mut Criterion) {
    use costream::joint::{JointPlacementSearch, JointQuery, JointSearchProblem};
    use costream::search::{LocalSearch, PlacementSearch, SearchProblem};
    use costream::test_fixtures;
    use std::time::Instant;

    let corpus = test_fixtures::corpus(48, 31);
    let trio = test_fixtures::trio(&corpus, 2, 2);
    let scorer = trio.scorer();
    let wide = test_fixtures::wide_cluster(256);

    const BUDGET: usize = 16;
    const SEED: u64 = 35;
    const REPS: usize = 3;
    let serial = LocalSearch {
        threads: Some(1),
        ..Default::default()
    };
    // `None` resolves through COSTREAM_SEARCH_THREADS / the width
    // heuristic: all cores at 256 hosts.
    let auto = LocalSearch::default();

    // --- single query on 256 hosts ---
    let (q, _small, sels) = test_fixtures::workload(33, 4);
    let problem = SearchProblem {
        query: &q,
        cluster: &wide,
        est_sels: &sels,
        featurization: Featurization::Full,
    };
    c.bench_function("search_wide_256_local", |b| {
        b.iter(|| auto.search(&problem, &scorer, BUDGET, SEED))
    });

    let timed = |s: &LocalSearch| {
        let mut best = f64::INFINITY;
        let mut r = s.search(&problem, &scorer, BUDGET, SEED); // warm-up
        for _ in 0..REPS {
            let t0 = Instant::now();
            r = s.search(&problem, &scorer, BUDGET, SEED);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, r)
    };
    let (seq_s, seq_r) = timed(&serial);
    let (par_s, par_r) = timed(&auto);
    assert_eq!(
        seq_r.best.assignment(),
        par_r.best.assignment(),
        "parallel changed the result"
    );
    assert_eq!(seq_r.candidates.len(), par_r.candidates.len());
    for (x, y) in seq_r.candidates.iter().zip(&par_r.candidates) {
        assert_eq!(x.placement.assignment(), y.placement.assignment());
        assert_eq!(x.predicted_cost.to_bits(), y.predicted_cost.to_bits());
    }
    assert_eq!(seq_r.stats.validity_checks(), par_r.stats.validity_checks());
    let cand_per_s = par_r.stats.validity_checks() as f64 / par_s;
    criterion::register_metric("search_wide_256_candidates_per_s", cand_per_s, "candidates_per_s");
    criterion::register_metric("search_wide_256_speedup", seq_s / par_s, "x");
    eprintln!(
        "  search_wide 256 hosts: {} checks, {} scored; serial {:.1} ms vs parallel {:.1} ms ({} workers) -> {:.2}x, {:.0} candidates/s",
        par_r.stats.validity_checks(),
        par_r.stats.candidates_scored,
        seq_s * 1e3,
        par_s * 1e3,
        par_r.stats.threads,
        seq_s / par_s,
        cand_per_s
    );

    // --- 3-query joint on the same 256 hosts, equal budget ---
    let (queries, _small, jsels) = test_fixtures::multi_query_workload(36, 3, 4);
    let jqs = JointQuery::zip(&queries, &jsels);
    let jproblem = JointSearchProblem {
        queries: &jqs,
        cluster: &wide,
        featurization: Featurization::Full,
        interference: None,
    };
    c.bench_function("search_wide_256_joint", |b| {
        b.iter(|| auto.search_joint(&jproblem, &scorer, BUDGET, SEED))
    });
    let jtimed = |s: &LocalSearch| {
        let mut best = f64::INFINITY;
        let mut r = s.search_joint(&jproblem, &scorer, BUDGET, SEED); // warm-up
        for _ in 0..REPS {
            let t0 = Instant::now();
            r = s.search_joint(&jproblem, &scorer, BUDGET, SEED);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, r)
    };
    let (jseq_s, jseq_r) = jtimed(&serial);
    let (jpar_s, jpar_r) = jtimed(&auto);
    assert_eq!(
        jseq_r.best.flattened(),
        jpar_r.best.flattened(),
        "parallel changed the joint result"
    );
    assert_eq!(jseq_r.candidates.len(), jpar_r.candidates.len());
    for (x, y) in jseq_r.candidates.iter().zip(&jpar_r.candidates) {
        assert_eq!(x.placement.flattened(), y.placement.flattened());
        for (sx, sy) in x.per_query.iter().zip(&y.per_query) {
            assert_eq!(sx.cost.to_bits(), sy.cost.to_bits());
        }
    }
    criterion::register_metric(
        "search_wide_256_joint_candidates_per_s",
        jpar_r.stats.validity_checks() as f64 / jpar_s,
        "candidates_per_s",
    );
    eprintln!(
        "  search_wide 256 hosts joint (3 queries): {} checks; serial {:.1} ms vs parallel {:.1} ms -> {:.2}x",
        jpar_r.stats.validity_checks(),
        jseq_s * 1e3,
        jpar_s * 1e3,
        jseq_s / jpar_s
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matmul_kernels, bench_graph_primitives, bench_training_path, bench_simulator, bench_featurize, bench_inference, bench_ensemble_fused, bench_ensemble_train, bench_gbdt, bench_enumeration, bench_optimizer_search, bench_interference, bench_joint_placement, bench_serving, bench_front_load, bench_replay_drift, bench_search_wide
}
criterion_main!(benches);
