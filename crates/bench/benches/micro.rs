//! Micro-benchmarks of the reproduction's hot paths: simulator runs,
//! joint-graph featurization, GNN inference, GBDT fitting and placement
//! enumeration. These complement the experiment binary (which regenerates
//! the paper's tables) with performance numbers for the substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use costream::prelude::*;
use costream::optimizer::enumerate_candidates;
use costream_baselines::{Gbdt, GbdtConfig, Objective};
use costream_dsps::simulate;
use costream_query::generator::WorkloadGenerator;
use costream_query::selectivity::SelectivityEstimator;

fn bench_simulator(c: &mut Criterion) {
    let mut g = WorkloadGenerator::new(1, FeatureRanges::training());
    let (q, cl, p) = g.workload_item();
    let cfg = SimConfig::default();
    c.bench_function("simulate_4min_query", |b| b.iter(|| simulate(&q, &cl, &p, &cfg)));
}

fn bench_featurize(c: &mut Criterion) {
    let mut g = WorkloadGenerator::new(2, FeatureRanges::training());
    let (q, cl, p) = g.workload_item();
    let sels = SelectivityEstimator::realistic(3).estimate_query(&q);
    c.bench_function("joint_graph_build", |b| {
        b.iter(|| JointGraph::build(&q, &cl, &p, &sels, Featurization::Full))
    });
}

fn bench_inference(c: &mut Criterion) {
    let corpus = Corpus::generate(64, 4, FeatureRanges::training(), &SimConfig::default());
    let cfg = TrainConfig { epochs: 2, ..Default::default() };
    let model = train_metric(&corpus, CostMetric::ProcessingLatency, &cfg);
    let graphs: Vec<JointGraph> = corpus.items.iter().map(|i| i.graph(Featurization::Full)).collect();
    let one = &graphs[0];
    let refs: Vec<&JointGraph> = graphs.iter().collect();
    c.bench_function("gnn_inference_single_graph", |b| b.iter(|| model.predict_graphs(&[one])));
    c.bench_function("gnn_inference_batch64", |b| b.iter(|| model.predict_graphs(&refs)));
}

fn bench_gbdt(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(5);
    let xs: Vec<Vec<f64>> = (0..500).map(|_| (0..26).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x[0] * 3.0 + x[1]).collect();
    let cfg = GbdtConfig { n_trees: 30, ..Default::default() };
    c.bench_function("gbdt_fit_500x26", |b| b.iter(|| Gbdt::fit(&xs, &ys, Objective::Regression, &cfg)));
}

fn bench_enumeration(c: &mut Criterion) {
    let mut g = WorkloadGenerator::new(6, FeatureRanges::training());
    let q = g.query();
    let cl = g.cluster(6);
    c.bench_function("enumerate_12_candidates", |b| b.iter(|| enumerate_candidates(&q, &cl, 12, 7)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_simulator, bench_featurize, bench_inference, bench_gbdt, bench_enumeration
}
criterion_main!(benches);
