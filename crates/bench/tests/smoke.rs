//! Smoke test: the experiment harness runs end to end at tiny scale and
//! produces structurally complete results for every table/figure.

use costream::prelude::*;
use costream_bench::{exp1, exp34, exp56, exp7, harness};

#[test]
fn experiment_harness_smoke() {
    let scale = harness::Scale {
        corpus_size: 150,
        epochs: 6,
        retrain_corpus: 120,
        retrain_epochs: 5,
        eval_queries: 12,
        ..harness::Scale::quick()
    };
    let corpus = Corpus::generate(
        scale.corpus_size,
        scale.seed,
        FeatureRanges::training(),
        &SimConfig::default(),
    );
    let (train, _, test) = corpus.split(scale.seed);
    let models = harness::train_all(&train, &scale);

    let r1 = exp1::run(&models, &test, &scale);
    assert_eq!(r1.overall.len(), 5, "Table III has five metric rows");

    let r3 = exp34::run_3(&models, &scale);
    assert_eq!(r3.len(), 5, "Table IV has five metric rows");

    let r5 = exp56::run_5(&models, &train, &scale);
    assert_eq!(r5.by_chain.len(), 3, "Table VI-A covers 2/3/4-filter chains");
    assert_eq!(r5.finetune.len(), 3, "Fig. 11 covers all chain lengths");

    let r6 = exp56::run_6(&models, &scale);
    assert_eq!(r6.by_benchmark.len(), 4, "Table VI-B covers four benchmarks");

    let r7a = exp7::run_7a(&train, &test, &scale);
    assert_eq!(r7a.rows.len(), 3, "Fig. 12 compares three featurizations");
    let r7b = exp7::run_7b(&train, &test, &scale);
    assert_eq!(r7b.rows.len(), 3, "Fig. 13 covers the regression metrics");
}
