//! Vendored stand-in for `criterion`.
//!
//! Provides the `Criterion` / `criterion_group!` / `criterion_main!`
//! surface the bench harness uses, measured with `std::time::Instant`.
//! Each benchmark warms up, picks an iteration count that fills roughly
//! `measurement_time / sample_size` per sample, records the median
//! nanoseconds per iteration over `sample_size` samples, prints a
//! criterion-style line, and registers the result.
//!
//! [`write_results`] (called by the `criterion_main!` expansion after all
//! groups ran) exports every registered result as JSON — by default to
//! `BENCH_micro.json` in the working directory, or to the path in the
//! `BENCH_JSON` environment variable. Each entry records the op name,
//! ns/iter, and derived throughput (iterations per second), so perf
//! trajectories can be tracked across commits.

pub use std::hint::black_box;

use std::sync::Mutex;
use std::time::{Duration, Instant};

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());
static METRICS: Mutex<Vec<MetricResult>> = Mutex::new(Vec::new());

/// One finished benchmark measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark id.
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// One non-timing quality metric recorded alongside the benchmarks
/// (e.g. the predicted cost a search strategy found for its budget).
/// Exported under a separate `metrics` key so timing consumers never
/// misread a value as nanoseconds.
#[derive(Clone, Debug)]
pub struct MetricResult {
    /// Metric id.
    pub name: String,
    /// Measured value, in `unit`.
    pub value: f64,
    /// Unit label (e.g. `"predicted_ms"`).
    pub unit: String,
}

/// Benchmark driver (builder + runner).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            ns_per_iter: None,
        };
        f(&mut bencher);
        let ns = bencher.ns_per_iter.expect("bench closure must call Bencher::iter");
        eprintln!("{id:<40} time: [{}]", format_ns(ns));
        RESULTS.lock().expect("results lock").push(BenchResult {
            name: id.to_string(),
            ns_per_iter: ns,
        });
        self
    }
}

/// Timing harness passed to the bench closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures a closure. The return value is passed through
    /// [`black_box`] so the computation is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Pick iterations per sample to fill measurement_time/sample_size.
        let per_sample_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters = ((per_sample_ns / est_ns).round() as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        self.ns_per_iter = Some(median);
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Registers an externally measured result alongside the
/// `bench_function` ones, under the same JSON export. For harnesses the
/// closed-loop `Bencher` can't express — load generators measuring
/// wall-clock throughput and latency percentiles across client threads.
pub fn register_result(name: &str, ns_per_iter: f64) {
    eprintln!("{name:<40} time: [{}]", format_ns(ns_per_iter));
    RESULTS.lock().expect("results lock").push(BenchResult {
        name: name.to_string(),
        ns_per_iter,
    });
}

/// Registers a non-timing quality metric (exported under the JSON
/// `metrics` key, with an explicit unit, so it is never confused with a
/// ns/iter timing and gets no derived throughput).
pub fn register_metric(name: &str, value: f64, unit: &str) {
    eprintln!("{name:<40} {value:.2} {unit}");
    METRICS.lock().expect("metrics lock").push(MetricResult {
        name: name.to_string(),
        value,
        unit: unit.to_string(),
    });
}

/// Writes all registered results as JSON: a `meta` header recording the
/// runner (core count matters — several benched paths work-share over the
/// rayon pool, so ns/iter is only comparable between runners of equal
/// width) followed by the `results` array. Called automatically by the
/// `criterion_main!` expansion.
pub fn write_results() {
    let results = RESULTS.lock().expect("results lock");
    let metrics = METRICS.lock().expect("metrics lock");
    if results.is_empty() && metrics.is_empty() {
        return;
    }
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_micro.json".to_string());
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = format!("{{\n  \"meta\": {{\"cores\": {cores}}},\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"ns_per_iter\": {:.1}, \"throughput_per_s\": {:.3}}}",
            r.name,
            r.ns_per_iter,
            1e9 / r.ns_per_iter
        ));
    }
    out.push_str("\n  ]");
    if !metrics.is_empty() {
        out.push_str(",\n  \"metrics\": [\n");
        for (i, m) in metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"op\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}",
                m.name, m.value, m.unit
            ));
        }
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    match std::fs::write(&path, &out) {
        Ok(()) => eprintln!(
            "wrote {} bench results + {} metrics to {path} ({cores} cores)",
            results.len(),
            metrics.len()
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running all groups and then
/// exporting results.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_registers() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("shim_smoke_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let results = RESULTS.lock().unwrap();
        let r = results.iter().find(|r| r.name == "shim_smoke_sum").expect("registered");
        assert!(r.ns_per_iter > 0.0);
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
    }
}
