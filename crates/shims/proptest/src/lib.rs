//! Vendored stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! numeric `Range`/`RangeInclusive` strategies (`seed in 0u64..5000`), and
//! the `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with its case index and message. Generation is deterministic — every
//! run draws the same cases from a fixed seed, which doubles as
//! reproducibility for CI.

use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Run configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Value-generation strategy.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(usize, u64, u32, u8, i64, i32);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing vectors of a given element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vector strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestCaseError};
}

/// Asserts a condition inside a property test, failing the current case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, "assertion failed: {:?} != {:?}", __a, __b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assertion failed: {:?} == {:?}", __a, __b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)*);
    }};
}

/// Declares property tests. Each function body runs once per generated
/// case; argument values are drawn from the `in <strategy>` expressions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            // Seed differs per test so sibling tests explore different cases.
            let __seed = {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for b in stringify!($name).bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
                h
            };
            let mut __rng: $crate::TestRng = <$crate::TestRng as ::rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        e,
                        format!(concat!($(stringify!($arg), " = {:?}  ",)+), $($arg),+)
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0u64..100, y in 1usize..10, f in -1.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((1..10).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn eq_assertions_work(a in 0u32..50) {
            prop_assert_eq!(a + 1, 1 + a);
            prop_assert_ne!(a, a + 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(v in 0u8..=255) {
            prop_assert!(u32::from(v) < 256);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x < 5, "x was {}", x);
            }
        }
        inner();
    }
}
