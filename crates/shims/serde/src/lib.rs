//! Vendored stand-in for `serde`.
//!
//! The build environment is offline, so this crate provides the slice of
//! serde this workspace relies on: `#[derive(Serialize, Deserialize)]` for
//! structs and enums (including `#[serde(skip)]`), implementations for the
//! std types used in the models (numbers, strings, `Vec`, `Option`,
//! tuples), and a generic [`Value`] tree that `serde_json` renders to and
//! parses from.
//!
//! The data model follows serde's JSON conventions: structs become
//! objects, unit enum variants become strings, newtype/tuple variants
//! become single-key objects (externally tagged), and newtype structs are
//! transparent.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value does not fit `i64`).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key-value map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves to a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::msg(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    other => Err(DeError::msg(format!("expected unsigned integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::msg(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        Ok(($($t::from_value(items.get($n).ok_or_else(|| DeError::msg("tuple too short"))?)?,)+))
                    }
                    other => Err(DeError::msg(format!("expected tuple array, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Helpers referenced by the code that `#[derive(Serialize, Deserialize)]`
/// expands to. Not intended for direct use.
pub mod de_helpers {
    use super::{DeError, Deserialize, Value};

    /// Extracts and deserializes a named struct field.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v.get(name) {
            Some(inner) => T::from_value(inner).map_err(|e| DeError::msg(format!("field `{name}`: {}", e.0))),
            None => Err(DeError::msg(format!("missing field `{name}`"))),
        }
    }

    /// Extracts and deserializes one element of a tuple-struct array.
    pub fn elem<T: Deserialize>(v: &Value, idx: usize) -> Result<T, DeError> {
        match v {
            Value::Array(items) => {
                let inner = items
                    .get(idx)
                    .ok_or_else(|| DeError::msg(format!("missing tuple element {idx}")))?;
                T::from_value(inner)
            }
            other => Err(DeError::msg(format!("expected tuple array, got {other:?}"))),
        }
    }

    /// Splits an externally-tagged enum value into `(variant, payload)`.
    pub fn enum_variant(v: &Value) -> Result<(&str, Option<&Value>), DeError> {
        match v {
            Value::Str(name) => Ok((name.as_str(), None)),
            Value::Object(fields) if fields.len() == 1 => Ok((fields[0].0.as_str(), Some(&fields[0].1))),
            other => Err(DeError::msg(format!("expected enum variant, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let t: (usize, usize) = Deserialize::from_value(&(3usize, 4usize).to_value()).unwrap();
        assert_eq!(t, (3, 4));
    }

    #[test]
    fn nan_becomes_null_and_back() {
        let v = f64::NAN.to_value();
        assert_eq!(v, Value::Null);
        assert!(f64::from_value(&v).unwrap().is_nan());
    }

    #[test]
    fn vec_of_tuples_roundtrips() {
        let edges: Vec<(usize, usize)> = vec![(0, 1), (2, 3)];
        let back: Vec<(usize, usize)> = Deserialize::from_value(&edges.to_value()).unwrap();
        assert_eq!(back, edges);
    }
}
