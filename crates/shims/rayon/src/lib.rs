//! Vendored stand-in for `rayon`.
//!
//! Implements the parallel-iterator subset this workspace uses —
//! `into_par_iter()` / `par_iter()` / `par_chunks()` followed by `map` and
//! `collect`, plus [`join`] — on top of `std::thread::scope`. `map` is
//! *eager*: it distributes items over a work-sharing index queue across
//! `available_parallelism()` threads and materializes the results in input
//! order, which matches rayon's semantics for the pure per-item closures
//! used here (no `for_each` side-effect ordering is relied upon).
//!
//! Single-item inputs and single-core machines short-circuit to the
//! serial path, and a thread-local nesting guard makes parallel calls
//! issued *from inside a worker* run serially — so nested parallelism
//! (ensemble members × inference chunks) degrades gracefully instead of
//! spawning `k x cores` threads.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// True while the current thread is a `parallel_map` worker; nested
    /// parallel calls on such a thread stay serial.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined closure panicked");
        (ra, rb)
    })
}

/// Distributes `items` over worker threads and applies `f`, preserving
/// input order in the result.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if n <= 1 || threads <= 1 || IN_WORKER.with(Cell::get) {
        return items.into_iter().map(f).collect();
    }

    // Items move to whichever worker claims their index; results land in
    // their original slot.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().expect("item slot").take().expect("item claimed once");
                    let r = f(item);
                    *results[i].lock().expect("result slot") = Some(r);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result lock").expect("worker filled every slot"))
        .collect()
}

/// An eager parallel iterator: holds the already-materialized items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<R: Send, F: Fn(T) -> R + Sync + Send>(self, f: F) -> ParIter<R> {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    /// Collects the results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

/// Borrowing conversion (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Item type (a reference).
    type Item: Send + 'data;

    /// Parallel iterator over references.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;

    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel chunking of slices (`.par_chunks(n)`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over non-overlapping chunks of `size` elements
    /// (last chunk may be shorter).
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// Common imports.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(v.len(), 4, "original still usable");
    }

    #[test]
    fn par_chunks_cover_slice() {
        let v: Vec<usize> = (0..10).collect();
        let sums: Vec<usize> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 40 + 2, || "ok");
        assert_eq!((a, b), (42, "ok"));
    }

    #[test]
    fn nested_parallel_calls_stay_serial() {
        // Inner par_iter inside a worker must not spawn another thread
        // fleet; it should still compute correctly.
        let outer: Vec<Vec<u64>> = (0..4u64)
            .into_par_iter()
            .map(|i| (0..8u64).into_par_iter().map(move |j| i * 10 + j).collect())
            .collect();
        assert_eq!(outer.len(), 4);
        assert_eq!(outer[2][3], 23);
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(none.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
