//! Vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access, so this workspace ships a
//! minimal, dependency-free implementation of exactly the API surface the
//! Costream reproduction uses: [`rngs::StdRng`] (seeded, deterministic),
//! the [`Rng`] extension methods `gen`, `gen_range`, `gen_bool`, the
//! [`SeedableRng`] constructors, and the slice helpers in [`seq`].
//!
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — a
//! well-studied generator with excellent statistical quality for
//! simulation workloads. It is *not* the same stream as upstream `StdRng`
//! (which is ChaCha12); all determinism guarantees in this workspace are
//! internal (same seed ⇒ same run with this library), which is all the
//! reproduction relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds a generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Ranges a uniform value can be drawn from (mirrors `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
    };
}
float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    };
}
int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(u8);
int_range!(i64);
int_range!(i32);

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type (`[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators (API parity with `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point of xoshiro.
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }
}

/// Slice sampling and shuffling (API parity with `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` for an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_and_choose_cover_elements() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert!(orig.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
