//! Vendored stand-in for `serde_json`: renders the serde shim's
//! [`Value`](serde::Value) tree to JSON text and parses it back.
//!
//! Numbers print through Rust's shortest-round-trip float formatting, so
//! `f32`/`f64` values survive a serialize → parse cycle exactly. Non-finite
//! floats serialize as `null` (as upstream serde_json does) and parse back
//! as NaN.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- printing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's float Display is the shortest round-trip form.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error::new(format!("invalid escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at offset {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) });
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[0.1f32, 1e-7, 2.718_45, -2.0, 6.02e23] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&s).unwrap(), x, "via {s}");
        }
        for &x in &[0.1f64, 1e-300, 2.0f64.powi(60) + 1.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let original = "line\n\"quoted\"\tüñî";
        let s = to_string(&original.to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<(usize, usize)> = vec![(1, 2), (3, 4)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(usize, usize)>>(&s).unwrap(), v);
        let o: Option<Vec<f32>> = Some(vec![1.0, 2.0]);
        let s = to_string(&o).unwrap();
        assert_eq!(from_str::<Option<Vec<f32>>>(&s).unwrap(), o);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v: Vec<Vec<u8>> = vec![vec![1], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&s).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("1 garbage").is_err());
    }
}
