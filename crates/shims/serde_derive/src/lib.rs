//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build
//! environment has no `syn`/`quote`). Supports the shapes this workspace
//! uses:
//!
//! * structs with named fields, honouring `#[serde(skip)]` (skipped on
//!   serialize, `Default::default()` on deserialize);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * enums with unit and tuple variants, externally tagged exactly like
//!   serde-JSON (`"Variant"` / `{"Variant": payload}`).
//!
//! Generic types are intentionally unsupported and produce a compile
//! error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(Vec<Field>),
    Unit,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes and visibility.
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde shim derive: expected enum body for `{name}`, found {other:?}"),
        }
    };

    Input { name, shape }
}

/// Advances past any `#[...]` attributes, returning whether a
/// `#[serde(skip)]` was among them.
fn take_attributes(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            if attribute_is_serde_skip(g.stream()) {
                skip = true;
            }
            *i += 2;
        } else {
            *i += 1;
        }
    }
    skip
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    take_attributes(tokens, i);
}

fn attribute_is_serde_skip(stream: TokenStream) -> bool {
    // Matches the token shape of `serde(skip)`.
    let parts: Vec<TokenTree> = stream.into_iter().collect();
    match parts.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis) {
            *i += 1;
        }
    }
}

/// Advances past a type expression until a top-level comma (or the end),
/// tracking `<...>` nesting so commas inside generics are not split on.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = take_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        i += 1; // past the comma (or end)
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = take_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        i += 1;
        fields.push(Field {
            name: fields.len().to_string(),
            skip,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream, type_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        take_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name in `{type_name}`, found {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()).into_iter().map(|f| f.name).collect())
            }
            _ => VariantShape::Unit,
        };
        let _ = type_name;
        // Past the trailing comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let mut j = i;
        skip_type(&tokens, &mut j);
        count += 1;
        i = j + 1;
    }
    count
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)"
            )
        }
        Shape::Tuple(fields) if fields.len() == 1 => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(fields) => {
            let elems: Vec<String> = (0..fields.len())
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(__p0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__p0))]),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__p{k}")).collect();
                        let elems: Vec<String> =
                            binds.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{elems}]))]),\n",
                            v = v.name,
                            binds = binds.join(", "),
                            elems = elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("__inner.push((\"{f}\".to_string(), ::serde::Serialize::to_value({f})));")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                                 let mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                                 {pushes}\n\
                                 ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(__inner))])\n\
                             }}\n",
                            v = v.name,
                            pushes = pushes.join("\n")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{n}: ::std::default::Default::default(),\n", n = f.name));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::de_helpers::field(__v, \"{n}\")?,\n",
                        n = f.name
                    ));
                }
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::Tuple(fields) if fields.len() == 1 => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(fields) => {
            let elems: Vec<String> = (0..fields.len())
                .map(|k| format!("::serde::de_helpers::elem(__v, {k})?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", elems.join(", "))
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "\"{v}\" => {{\n\
                             let __p = __payload.ok_or_else(|| ::serde::DeError::msg(\"variant `{v}` expects a payload\"))?;\n\
                             ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__p)?))\n\
                         }}\n",
                        v = v.name
                    )),
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> =
                            (0..*n).map(|k| format!("::serde::de_helpers::elem(__p, {k})?")).collect();
                        arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let __p = __payload.ok_or_else(|| ::serde::DeError::msg(\"variant `{v}` expects a payload\"))?;\n\
                                 ::std::result::Result::Ok({name}::{v}({elems}))\n\
                             }}\n",
                            v = v.name,
                            elems = elems.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_helpers::field(__p, \"{f}\")?,"))
                            .collect();
                        arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let __p = __payload.ok_or_else(|| ::serde::DeError::msg(\"variant `{v}` expects a payload\"))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                             }}\n",
                            v = v.name,
                            inits = inits.join("\n")
                        ));
                    }
                }
            }
            format!(
                "let (__variant, __payload) = ::serde::de_helpers::enum_variant(__v)?;\n\
                 match __variant {{\n{arms}\
                 other => ::std::result::Result::Err(::serde::DeError::msg(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
