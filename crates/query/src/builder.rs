//! A fluent builder for streaming queries.
//!
//! Hand-assembling `(ops, edges)` vectors is error-prone for downstream
//! users; the builder tracks open stream heads and wires edges as
//! operators are appended, producing a validated [`Query`].
//!
//! ```
//! use costream_query::builder::QueryBuilder;
//! use costream_query::datatypes::DataType;
//! use costream_query::operators::{AggFunction, FilterFunction, WindowPolicy, WindowSpec, WindowType};
//!
//! let window = WindowSpec {
//!     window_type: WindowType::Tumbling,
//!     policy: WindowPolicy::CountBased,
//!     size: 20.0,
//!     slide: 20.0,
//! };
//! let query = QueryBuilder::new()
//!     .source(500.0, &[DataType::Int, DataType::Double])
//!     .filter(FilterFunction::Greater, DataType::Double, 0.4)
//!     .source(200.0, &[DataType::Int, DataType::Int, DataType::String])
//!     .join(DataType::Int, window, 0.01)
//!     .aggregate(AggFunction::Mean, DataType::Double, None, window, 0.5)
//!     .sink();
//! assert_eq!(query.len(), 6);
//! ```

use crate::datatypes::{DataType, TupleSchema};
use crate::operators::{
    AggFunction, AggSpec, FilterFunction, FilterSpec, JoinSpec, OpId, OpKind, Query, SourceSpec, WindowSpec,
};

/// Incrementally builds a [`Query`].
///
/// The builder maintains a stack of *open heads* (stream ends not yet
/// consumed). Unary operators pop one head and push their own id; joins
/// pop two; [`QueryBuilder::sink`] requires exactly one open head.
#[derive(Debug, Default)]
pub struct QueryBuilder {
    ops: Vec<OpKind>,
    edges: Vec<(OpId, OpId)>,
    heads: Vec<OpId>,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of open stream heads.
    pub fn open_heads(&self) -> usize {
        self.heads.len()
    }

    /// Adds a data source with the given event rate and schema, opening a
    /// new stream head.
    pub fn source(mut self, event_rate: f64, attributes: &[DataType]) -> Self {
        let id = self.ops.len();
        self.ops.push(OpKind::Source(SourceSpec {
            event_rate,
            schema: TupleSchema::new(attributes.to_vec()),
        }));
        self.heads.push(id);
        self
    }

    fn push_unary(&mut self, op: OpKind) {
        let head = self
            .heads
            .pop()
            .expect("a unary operator needs an open stream; add a source first");
        let id = self.ops.len();
        self.ops.push(op);
        self.edges.push((head, id));
        self.heads.push(id);
    }

    /// Appends a filter to the most recent stream head.
    ///
    /// # Panics
    /// Panics if no stream is open.
    pub fn filter(mut self, function: FilterFunction, literal_type: DataType, selectivity: f64) -> Self {
        self.push_unary(OpKind::Filter(FilterSpec {
            function,
            literal_type,
            selectivity,
        }));
        self
    }

    /// Appends a windowed aggregation to the most recent stream head.
    ///
    /// # Panics
    /// Panics if no stream is open.
    pub fn aggregate(
        mut self,
        function: AggFunction,
        agg_type: DataType,
        group_by: Option<DataType>,
        window: WindowSpec,
        selectivity: f64,
    ) -> Self {
        self.push_unary(OpKind::WindowAggregate(AggSpec {
            function,
            agg_type,
            group_by,
            window,
            selectivity,
        }));
        self
    }

    /// Joins the two most recently opened stream heads.
    ///
    /// # Panics
    /// Panics if fewer than two streams are open.
    pub fn join(mut self, key_type: DataType, window: WindowSpec, selectivity: f64) -> Self {
        assert!(self.heads.len() >= 2, "a join needs two open streams");
        let right = self.heads.pop().expect("checked");
        let left = self.heads.pop().expect("checked");
        let id = self.ops.len();
        self.ops.push(OpKind::WindowJoin(JoinSpec {
            key_type,
            window,
            selectivity,
        }));
        self.edges.push((left, id));
        self.edges.push((right, id));
        self.heads.push(id);
        self
    }

    /// Terminates the query with a sink and validates it.
    ///
    /// # Panics
    /// Panics unless exactly one stream head is open, or if the resulting
    /// query fails structural validation.
    pub fn sink(mut self) -> Query {
        assert_eq!(
            self.heads.len(),
            1,
            "a query needs exactly one open stream at the sink; {} are open",
            self.heads.len()
        );
        let head = self.heads.pop().expect("checked");
        let id = self.ops.len();
        self.ops.push(OpKind::Sink);
        self.edges.push((head, id));
        Query::new(self.ops, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{WindowPolicy, WindowType};

    fn window() -> WindowSpec {
        WindowSpec {
            window_type: WindowType::Tumbling,
            policy: WindowPolicy::CountBased,
            size: 10.0,
            slide: 10.0,
        }
    }

    #[test]
    fn linear_pipeline() {
        let q = QueryBuilder::new()
            .source(100.0, &[DataType::Int, DataType::Int, DataType::Int])
            .filter(FilterFunction::Less, DataType::Int, 0.5)
            .sink();
        assert_eq!(q.len(), 3);
        assert!(q.validate().is_ok());
    }

    #[test]
    fn three_way_join_builds() {
        let q = QueryBuilder::new()
            .source(100.0, &[DataType::Int, DataType::Int, DataType::Int])
            .source(100.0, &[DataType::Int, DataType::Int, DataType::Int])
            .join(DataType::Int, window(), 0.01)
            .source(50.0, &[DataType::Int, DataType::Double, DataType::String])
            .join(DataType::Int, window(), 0.01)
            .sink();
        let (s, _, _, j) = q.kind_counts();
        assert_eq!((s, j), (3, 2));
    }

    #[test]
    #[should_panic(expected = "two open streams")]
    fn join_without_two_streams_panics() {
        let _ = QueryBuilder::new()
            .source(1.0, &[DataType::Int])
            .join(DataType::Int, window(), 0.1);
    }

    #[test]
    #[should_panic(expected = "exactly one open stream")]
    fn sink_with_two_open_streams_panics() {
        let _ = QueryBuilder::new()
            .source(1.0, &[DataType::Int])
            .source(1.0, &[DataType::Int])
            .sink();
    }

    #[test]
    #[should_panic(expected = "add a source first")]
    fn filter_without_source_panics() {
        let _ = QueryBuilder::new().filter(FilterFunction::Less, DataType::Int, 0.5);
    }

    #[test]
    fn builder_equals_manual_construction() {
        use crate::operators::SourceSpec;
        let manual = Query::new(
            vec![
                OpKind::Source(SourceSpec {
                    event_rate: 100.0,
                    schema: TupleSchema::new(vec![DataType::Int]),
                }),
                OpKind::Filter(FilterSpec {
                    function: FilterFunction::NotEq,
                    literal_type: DataType::Int,
                    selectivity: 0.9,
                }),
                OpKind::Sink,
            ],
            vec![(0, 1), (1, 2)],
        );
        let built = QueryBuilder::new()
            .source(100.0, &[DataType::Int])
            .filter(FilterFunction::NotEq, DataType::Int, 0.9)
            .sink();
        assert_eq!(manual, built);
    }
}
