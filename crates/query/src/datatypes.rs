//! Tuple schemas and attribute data types.

use serde::{Deserialize, Serialize};

/// Data type of a single tuple attribute.
///
/// The paper's training range uses tuples of 3–10 attributes drawn from
/// `{int, string, double}` (Table II). Data types matter for cost: string
/// comparisons and string join keys are more expensive than numeric ones,
/// and wider types mean more bytes on the wire and in window state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit integer attribute.
    Int,
    /// Variable-length string attribute.
    String,
    /// 64-bit floating point attribute.
    Double,
}

impl DataType {
    /// All supported data types.
    pub const ALL: [DataType; 3] = [DataType::Int, DataType::String, DataType::Double];

    /// Approximate serialized size of one value in bytes; used by the
    /// simulator's network and memory models.
    pub fn byte_size(self) -> f64 {
        match self {
            DataType::Int => 8.0,
            DataType::Double => 8.0,
            // Strings in the generated workloads average ~24 bytes payload
            // plus length header.
            DataType::String => 28.0,
        }
    }

    /// Relative CPU cost of comparing/hashing one value of this type,
    /// normalized to integer = 1.
    pub fn compare_cost(self) -> f64 {
        match self {
            DataType::Int => 1.0,
            DataType::Double => 1.2,
            DataType::String => 3.0,
        }
    }

    /// Index used for one-hot feature encoding.
    pub fn one_hot_index(self) -> usize {
        match self {
            DataType::Int => 0,
            DataType::String => 1,
            DataType::Double => 2,
        }
    }
}

/// Schema of a data stream: an ordered list of attribute types.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TupleSchema {
    /// Attribute data types in tuple order.
    pub attributes: Vec<DataType>,
}

impl TupleSchema {
    /// Creates a schema from attribute types.
    pub fn new(attributes: Vec<DataType>) -> Self {
        TupleSchema { attributes }
    }

    /// Tuple width: the number of attributes.
    pub fn width(&self) -> usize {
        self.attributes.len()
    }

    /// Serialized size of one tuple in bytes (attributes + framing).
    pub fn tuple_bytes(&self) -> f64 {
        16.0 + self.attributes.iter().map(|d| d.byte_size()).sum::<f64>()
    }

    /// Counts of (int, string, double) attributes.
    pub fn type_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for a in &self.attributes {
            match a {
                DataType::Int => c.0 += 1,
                DataType::String => c.1 += 1,
                DataType::Double => c.2 += 1,
            }
        }
        c
    }

    /// Concatenation of two schemas (join output).
    pub fn concat(&self, other: &TupleSchema) -> TupleSchema {
        let mut attributes = self.attributes.clone();
        attributes.extend(other.attributes.iter().copied());
        TupleSchema { attributes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes_are_positive_and_ordered() {
        assert!(DataType::String.byte_size() > DataType::Int.byte_size());
        for d in DataType::ALL {
            assert!(d.byte_size() > 0.0);
            assert!(d.compare_cost() >= 1.0);
        }
    }

    #[test]
    fn schema_width_and_counts() {
        let s = TupleSchema::new(vec![DataType::Int, DataType::Int, DataType::String, DataType::Double]);
        assert_eq!(s.width(), 4);
        assert_eq!(s.type_counts(), (2, 1, 1));
        assert!(s.tuple_bytes() > 16.0);
    }

    #[test]
    fn concat_joins_schemas() {
        let a = TupleSchema::new(vec![DataType::Int]);
        let b = TupleSchema::new(vec![DataType::String, DataType::Double]);
        let c = a.concat(&b);
        assert_eq!(c.width(), 3);
        assert_eq!(c.attributes[1], DataType::String);
    }

    #[test]
    fn one_hot_indices_unique() {
        let mut seen = [false; 3];
        for d in DataType::ALL {
            assert!(!seen[d.one_hot_index()]);
            seen[d.one_hot_index()] = true;
        }
    }
}
