//! Real-world benchmark queries of Exp 6 (§VII-F).
//!
//! These are the algebraic sub-queries of the DSPBench advertisement and
//! spike-detection benchmarks and of the DEBS'14 smart-grid challenge, with
//! synthetic data whose characteristics sit *outside* the training
//! distribution (continuous event rates instead of the Table II grid,
//! skewed selectivities, a window length the model never saw). The paper
//! executed each query 100 times with random event rates and placements;
//! [`BenchmarkQuery::build`] mirrors that by sampling those unknowns from
//! the provided RNG.

use crate::datatypes::{DataType, TupleSchema};
use crate::operators::{
    AggFunction, AggSpec, FilterFunction, FilterSpec, JoinSpec, OpKind, Query, SourceSpec, WindowPolicy, WindowSpec,
    WindowType,
};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four benchmark queries evaluated in Exp 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenchmarkQuery {
    /// DSPBench advertisement: clicks ⋈ impressions with a pre-join filter.
    Advertisement,
    /// DSPBench spike detection: sliding mean over sensor values, then a
    /// low-selectivity spike filter.
    SpikeDetection,
    /// DEBS'14 smart grid: global energy consumption over a sliding window.
    SmartGridGlobal,
    /// DEBS'14 smart grid: per-household consumption (grouped aggregation
    /// over the global aggregate stream).
    SmartGridLocal,
}

impl BenchmarkQuery {
    /// All benchmark queries, in the order of Table VI-B.
    pub const ALL: [BenchmarkQuery; 4] = [
        BenchmarkQuery::Advertisement,
        BenchmarkQuery::SpikeDetection,
        BenchmarkQuery::SmartGridGlobal,
        BenchmarkQuery::SmartGridLocal,
    ];

    /// Name as printed in Table VI-B.
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkQuery::Advertisement => "Advertisement",
            BenchmarkQuery::SpikeDetection => "Spike Detection",
            BenchmarkQuery::SmartGridGlobal => "Smart Grid (global)",
            BenchmarkQuery::SmartGridLocal => "Smart Grid (local)",
        }
    }

    /// Builds one instance of the benchmark query with random event rates
    /// (continuous, unlike the discrete training grid) and data-dependent
    /// selectivities.
    pub fn build(self, rng: &mut StdRng) -> Query {
        match self {
            BenchmarkQuery::Advertisement => advertisement(rng),
            BenchmarkQuery::SpikeDetection => spike_detection(rng),
            BenchmarkQuery::SmartGridGlobal => smart_grid_global(rng),
            BenchmarkQuery::SmartGridLocal => smart_grid_local(rng),
        }
    }
}

fn continuous_rate(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    // Log-uniform continuous rate: never coincides with the training grid.
    (rng.gen_range(lo.ln()..hi.ln())).exp()
}

/// Clicks and impressions streams, a filter on impressions (only banner
/// ads), and a windowed join on the ad id. The original DSPBench query also
/// computes a click-through ratio with user-defined operators; like the
/// paper we restrict it to the algebraic sub-query.
fn advertisement(rng: &mut StdRng) -> Query {
    // ad_id, user_id, page_id, event_time -> narrow 4-attribute tuples.
    let click_schema = TupleSchema::new(vec![DataType::Int, DataType::Int, DataType::String, DataType::Int]);
    let imp_schema = TupleSchema::new(vec![DataType::Int, DataType::Int, DataType::String, DataType::Int]);
    let clicks = continuous_rate(rng, 60.0, 1800.0);
    // Impressions outnumber clicks heavily — skew unseen in training where
    // both join inputs draw from the same rate grid.
    let impressions = clicks * rng.gen_range(5.0..20.0);
    let window = WindowSpec {
        window_type: WindowType::Sliding,
        policy: WindowPolicy::TimeBased,
        size: 3.0,
        slide: 1.0,
    };
    Query::new(
        vec![
            OpKind::Source(SourceSpec {
                event_rate: clicks,
                schema: click_schema,
            }),
            OpKind::Source(SourceSpec {
                event_rate: impressions,
                schema: imp_schema,
            }),
            OpKind::Filter(FilterSpec {
                function: FilterFunction::StartsWith,
                literal_type: DataType::String,
                selectivity: rng.gen_range(0.2..0.5),
            }),
            OpKind::WindowJoin(JoinSpec {
                key_type: DataType::Int,
                window,
                // CTR-like join: a click matches its impression; sparse.
                selectivity: rng.gen_range(0.0005..0.01),
            }),
            OpKind::Sink,
        ],
        vec![(0, 3), (1, 2), (2, 3), (3, 4)],
    )
}

/// Sliding mean over a sensor stream followed by a spike filter
/// (`value > 1.03 * moving average` in DSPBench, here a low-selectivity
/// numeric filter).
fn spike_detection(rng: &mut StdRng) -> Query {
    // device_id, temperature, humidity, light, timestamp
    let schema = TupleSchema::new(vec![
        DataType::Int,
        DataType::Double,
        DataType::Double,
        DataType::Double,
        DataType::Int,
    ]);
    let rate = continuous_rate(rng, 120.0, 9000.0);
    Query::new(
        vec![
            OpKind::Source(SourceSpec {
                event_rate: rate,
                schema,
            }),
            OpKind::WindowAggregate(AggSpec {
                function: AggFunction::Mean,
                agg_type: DataType::Double,
                group_by: Some(DataType::Int),
                window: WindowSpec {
                    window_type: WindowType::Sliding,
                    policy: WindowPolicy::CountBased,
                    size: 90.0,
                    slide: 30.0,
                },
                // Many devices => many groups per window.
                selectivity: rng.gen_range(0.3..0.9),
            }),
            OpKind::Filter(FilterSpec {
                function: FilterFunction::Greater,
                literal_type: DataType::Double,
                // Spikes are rare.
                selectivity: rng.gen_range(0.01..0.08),
            }),
            OpKind::Sink,
        ],
        vec![(0, 1), (1, 2), (2, 3)],
    )
}

/// Global energy consumption: sliding-window mean over the whole load
/// stream. The window length (1 hour in DEBS'14, here 24 s of stream time)
/// exceeds the training range's largest time window (16 s) — the paper
/// notes Costream must extrapolate over this.
fn smart_grid_global(rng: &mut StdRng) -> Query {
    // id, timestamp, value, property, plug_id, household_id, house_id
    let schema = TupleSchema::new(vec![
        DataType::Int,
        DataType::Int,
        DataType::Double,
        DataType::Int,
        DataType::Int,
        DataType::Int,
        DataType::Int,
    ]);
    let rate = continuous_rate(rng, 300.0, 12000.0);
    Query::new(
        vec![
            OpKind::Source(SourceSpec {
                event_rate: rate,
                schema,
            }),
            OpKind::WindowAggregate(AggSpec {
                function: AggFunction::Avg,
                agg_type: DataType::Double,
                group_by: None,
                window: WindowSpec {
                    window_type: WindowType::Sliding,
                    policy: WindowPolicy::TimeBased,
                    size: 24.0,
                    slide: 8.0,
                },
                selectivity: 1.0,
            }),
            OpKind::Sink,
        ],
        vec![(0, 1), (1, 2)],
    )
}

/// Local energy consumption: the global aggregate stream grouped by
/// household.
fn smart_grid_local(rng: &mut StdRng) -> Query {
    let schema = TupleSchema::new(vec![
        DataType::Int,
        DataType::Int,
        DataType::Double,
        DataType::Int,
        DataType::Int,
        DataType::Int,
        DataType::Int,
    ]);
    let rate = continuous_rate(rng, 300.0, 12000.0);
    Query::new(
        vec![
            OpKind::Source(SourceSpec {
                event_rate: rate,
                schema,
            }),
            OpKind::WindowAggregate(AggSpec {
                function: AggFunction::Avg,
                agg_type: DataType::Double,
                group_by: Some(DataType::Int),
                window: WindowSpec {
                    window_type: WindowType::Sliding,
                    policy: WindowPolicy::TimeBased,
                    size: 24.0,
                    slide: 8.0,
                },
                // Households per window: skewed, many groups.
                selectivity: rng.gen_range(0.1..0.4),
            }),
            OpKind::WindowAggregate(AggSpec {
                function: AggFunction::Mean,
                agg_type: DataType::Double,
                group_by: Some(DataType::Int),
                window: WindowSpec {
                    window_type: WindowType::Sliding,
                    policy: WindowPolicy::TimeBased,
                    size: 24.0,
                    slide: 8.0,
                },
                selectivity: rng.gen_range(0.1..0.4),
            }),
            OpKind::Sink,
        ],
        vec![(0, 1), (1, 2), (2, 3)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_benchmarks_build_valid_queries() {
        let mut rng = StdRng::seed_from_u64(1);
        for b in BenchmarkQuery::ALL {
            for _ in 0..20 {
                let q = b.build(&mut rng);
                assert!(q.validate().is_ok(), "{} invalid", b.name());
            }
        }
    }

    #[test]
    fn advertisement_joins_two_streams() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = BenchmarkQuery::Advertisement.build(&mut rng);
        let (s, f, _, j) = q.kind_counts();
        assert_eq!((s, f, j), (2, 1, 1));
    }

    #[test]
    fn smart_grid_window_exceeds_training_range() {
        use crate::ranges::FeatureRanges;
        let mut rng = StdRng::seed_from_u64(3);
        let q = BenchmarkQuery::SmartGridGlobal.build(&mut rng);
        let max_trained = FeatureRanges::training()
            .window_size_time
            .into_iter()
            .fold(0.0, f64::max);
        let agg_window = q
            .ops()
            .find_map(|(_, op)| match op {
                OpKind::WindowAggregate(a) => Some(a.window.size),
                _ => None,
            })
            .unwrap();
        assert!(agg_window > max_trained);
    }

    #[test]
    fn rates_are_continuous_not_grid() {
        use crate::ranges::FeatureRanges;
        let grid = FeatureRanges::training();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let q = BenchmarkQuery::SpikeDetection.build(&mut rng);
            for (_, op) in q.ops() {
                if let OpKind::Source(s) = op {
                    assert!(!grid.event_rate_linear.contains(&s.event_rate));
                }
            }
        }
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let a = BenchmarkQuery::Advertisement.build(&mut StdRng::seed_from_u64(5));
        let b = BenchmarkQuery::Advertisement.build(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
