//! Multi-query co-placement: joint placements of a *set* of queries on
//! one shared cluster, and the cross-query edit neighborhood a joint
//! optimizer searches.
//!
//! A single-query [`Placement`](crate::placement::Placement) maps one
//! query's operators to hosts; real clusters run many queries at once,
//! and co-resident operators shift each other's costs. A
//! [`JointPlacement`] bundles one placement per query together with the
//! per-host **occupancy** (how many operators, across all queries, are
//! resident on each host) — the quantity a contention-aware scorer
//! prices. Occupancy is maintained *incrementally* across edits, and
//! validity is still the per-query Fig. 5 rules: queries are logically
//! independent, so an edit touching one query only re-checks that query
//! (the cross-query coupling is soft, through contention, and is the
//! scorer's business, not the validity rules').
//!
//! [`JointNeighborhood`] generates the joint move space: relocating any
//! operator of any query, swapping hosts within a query, and swapping
//! hosts *across* queries. Every check reuses the single-query
//! incremental machinery of [`neighborhood`](crate::placement::neighborhood)
//! (capability rule on touched-incident edges, host-revisit masks over
//! the touched downstream cone), so a joint candidate check costs the
//! same as a single-query one per touched query.

use crate::hardware::{Cluster, HostId};
use crate::operators::{OpId, Query};
use crate::placement::neighborhood::{Move, MoveCounts, MoveScratch, Neighborhood, VisitState};
use crate::placement::Placement;
use serde::{Deserialize, Serialize};

/// A placement of several queries on one shared cluster: one
/// [`Placement`] per query plus the per-host operator occupancy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointPlacement {
    per_query: Vec<Placement>,
    occupancy: Vec<usize>,
}

impl JointPlacement {
    /// Bundles per-query placements into a joint placement on a cluster
    /// of `n_hosts` hosts, counting the initial occupancy.
    ///
    /// # Panics
    /// Panics when a placement references a host `>= n_hosts`.
    pub fn new(n_hosts: usize, per_query: Vec<Placement>) -> Self {
        let occupancy = count_occupancy(n_hosts, &per_query);
        JointPlacement { per_query, occupancy }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.per_query.len()
    }

    /// True when no queries are placed.
    pub fn is_empty(&self) -> bool {
        self.per_query.is_empty()
    }

    /// The placement of query `q`.
    pub fn query(&self, q: usize) -> &Placement {
        &self.per_query[q]
    }

    /// All per-query placements.
    pub fn placements(&self) -> &[Placement] {
        &self.per_query
    }

    /// Per-host operator occupancy across all queries (index = host id).
    pub fn occupancy(&self) -> &[usize] {
        &self.occupancy
    }

    /// Number of operators of query `q` resident on `host`.
    pub fn own_load(&self, q: usize, host: HostId) -> usize {
        self.per_query[q].assignment().iter().filter(|&&h| h == host).count()
    }

    /// The flattened assignment of all queries, in query order — the
    /// canonical duplicate-suppression key of a joint search (query
    /// arities are fixed per problem, so the concatenation is
    /// unambiguous).
    pub fn flattened(&self) -> Vec<HostId> {
        let mut out = Vec::new();
        self.flatten_into(&mut out);
        out
    }

    /// [`JointPlacement::flattened`] into a caller-owned buffer (cleared
    /// first) — no allocation once the buffer has grown.
    pub fn flatten_into(&self, out: &mut Vec<HostId>) {
        out.clear();
        for p in &self.per_query {
            out.extend_from_slice(p.assignment());
        }
    }

    /// Writes the flattened assignment of `self.apply(mv)` into `out`
    /// without constructing the edited joint placement — the
    /// allocation-free duplicate-suppression probe of a joint search.
    pub fn flattened_after(&self, mv: JointMove, out: &mut Vec<HostId>) {
        self.flatten_into(out);
        let offset = |q: usize| -> usize { self.per_query[..q].iter().map(|p| p.assignment().len()).sum() };
        match mv {
            JointMove::Relocate { query, op, to } => out[offset(query) + op] = to,
            JointMove::Swap { qa, a, qb, b } => out.swap(offset(qa) + a, offset(qb) + b),
        }
    }

    /// True when every query's placement satisfies its Fig. 5 rules.
    pub fn is_valid(&self, queries: &[&Query], cluster: &Cluster) -> bool {
        self.per_query.len() == queries.len() && self.per_query.iter().zip(queries).all(|(p, q)| p.is_valid(q, cluster))
    }

    /// The joint placement produced by applying `mv`, with occupancy
    /// maintained incrementally (a relocation shifts one unit of load;
    /// swaps exchange residents, leaving every host's total unchanged).
    pub fn apply(&self, mv: JointMove) -> JointPlacement {
        let mut next = self.clone();
        match mv {
            JointMove::Relocate { query, op, to } => {
                let from = next.per_query[query].host_of(op);
                let mut a = next.per_query[query].assignment().to_vec();
                a[op] = to;
                next.per_query[query] = Placement::new(a);
                next.occupancy[from] -= 1;
                next.occupancy[to] += 1;
            }
            JointMove::Swap { qa, a, qb, b } => {
                let ha = next.per_query[qa].host_of(a);
                let hb = next.per_query[qb].host_of(b);
                if qa == qb {
                    let mut v = next.per_query[qa].assignment().to_vec();
                    v.swap(a, b);
                    next.per_query[qa] = Placement::new(v);
                } else {
                    let mut va = next.per_query[qa].assignment().to_vec();
                    let mut vb = next.per_query[qb].assignment().to_vec();
                    va[a] = hb;
                    vb[b] = ha;
                    next.per_query[qa] = Placement::new(va);
                    next.per_query[qb] = Placement::new(vb);
                }
                // Hosts exchange residents: totals are unchanged.
            }
        }
        next
    }
}

/// Counts per-host occupancy from scratch — the reference the
/// incremental bookkeeping is tested against.
///
/// # Panics
/// Panics when a placement references a host `>= n_hosts`.
pub fn count_occupancy(n_hosts: usize, placements: &[Placement]) -> Vec<usize> {
    let mut occ = vec![0usize; n_hosts];
    for p in placements {
        for &h in p.assignment() {
            assert!(h < n_hosts, "placement references host {h} outside the cluster");
            occ[h] += 1;
        }
    }
    occ
}

/// A single edit of a joint placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JointMove {
    /// Move one operator of one query to another host.
    Relocate {
        /// The query whose operator moves.
        query: usize,
        /// The operator to move.
        op: OpId,
        /// Its new host.
        to: HostId,
    },
    /// Exchange the hosts of two operators — of the same query or of two
    /// different queries (`(qa, a)` is kept lexicographically before
    /// `(qb, b)` by the generators so each exchange appears once).
    Swap {
        /// Query of the first operator.
        qa: usize,
        /// First operator.
        a: OpId,
        /// Query of the second operator.
        qb: usize,
        /// Second operator.
        b: OpId,
    },
}

/// Precomputed structure for the joint move space: one single-query
/// [`Neighborhood`] per query (shared cluster), reused across every
/// joint placement a search visits.
pub struct JointNeighborhood<'a> {
    queries: Vec<&'a Query>,
    cluster: &'a Cluster,
    nbs: Vec<Neighborhood<'a>>,
    // One max-query-sized scratch shared by the serial enumeration entry
    // points (locked once per enumeration); parallel units bring their own.
    scratch: std::sync::Mutex<MoveScratch>,
}

impl<'a> JointNeighborhood<'a> {
    /// Precomputes the per-query structure for one (queries, cluster)
    /// problem.
    pub fn new(queries: &[&'a Query], cluster: &'a Cluster) -> Self {
        let max_ops = queries.iter().map(|q| q.len()).max().unwrap_or(0);
        let words = cluster.len().div_ceil(64).max(1);
        JointNeighborhood {
            queries: queries.to_vec(),
            cluster,
            nbs: queries.iter().map(|q| Neighborhood::new(q, cluster)).collect(),
            scratch: std::sync::Mutex::new(MoveScratch::new(max_ops, words)),
        }
    }

    /// Number of queries in the move space.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// A fresh scratch sized for the widest query in this move space.
    pub fn make_scratch(&self) -> MoveScratch {
        let max_ops = self.queries.iter().map(|q| q.len()).max().unwrap_or(0);
        MoveScratch::new(max_ops, self.cluster.len().div_ceil(64).max(1))
    }

    /// The rule ③ visit state of every query's placement, computed once
    /// per joint placement and reused for every candidate edit.
    pub fn visit_states(&self, jp: &JointPlacement) -> Vec<VisitState> {
        let mut states = Vec::new();
        self.visit_states_into(jp, &mut states);
        states
    }

    /// [`JointNeighborhood::visit_states`] into caller-owned states,
    /// reusing every per-query mask buffer across recomputations.
    pub fn visit_states_into(&self, jp: &JointPlacement, states: &mut Vec<VisitState>) {
        states.resize_with(self.nbs.len(), VisitState::empty);
        for ((nb, p), state) in self.nbs.iter().zip(jp.placements()).zip(states.iter_mut()) {
            nb.visit_state_into(p, state);
        }
    }

    /// Checks whether applying `mv` to the (valid) joint placement `jp`
    /// yields another valid joint placement, re-validating only the
    /// touched queries incrementally. `states` must be
    /// `self.visit_states(jp)`.
    pub fn is_valid_move(&self, jp: &JointPlacement, states: &[VisitState], mv: JointMove) -> bool {
        let mut scratch = self.scratch.lock().expect("joint neighborhood scratch lock");
        self.is_valid_move_with(jp, states, mv, &mut scratch)
    }

    /// [`JointNeighborhood::is_valid_move`] with caller-provided working
    /// buffers — the re-entrant form parallel enumeration uses, one
    /// scratch per worker, without touching the shared lock.
    pub fn is_valid_move_with(
        &self,
        jp: &JointPlacement,
        states: &[VisitState],
        mv: JointMove,
        scratch: &mut MoveScratch,
    ) -> bool {
        match mv {
            JointMove::Relocate { query, op, to } => {
                self.nbs[query].is_valid_move_with(jp.query(query), &states[query], Move::Relocate { op, to }, scratch)
            }
            JointMove::Swap { qa, a, qb, b } => {
                if qa == qb {
                    return self.nbs[qa].is_valid_move_with(jp.query(qa), &states[qa], Move::Swap { a, b }, scratch);
                }
                let (ha, hb) = (jp.query(qa).host_of(a), jp.query(qb).host_of(b));
                if ha == hb {
                    return false; // no-op exchange
                }
                // Across queries the exchange decomposes into two
                // independent relocations (the queries share no edges),
                // each checked incrementally within its own query.
                self.nbs[qa].is_valid_move_with(jp.query(qa), &states[qa], Move::Relocate { op: a, to: hb }, scratch)
                    && self.nbs[qb].is_valid_move_with(
                        jp.query(qb),
                        &states[qb],
                        Move::Relocate { op: b, to: ha },
                        scratch,
                    )
            }
        }
    }

    /// One relocation unit: every candidate host for operator `op` of
    /// query `q`, in ascending host order.
    fn relocations_of(
        &self,
        q: usize,
        op: OpId,
        jp: &JointPlacement,
        states: &[VisitState],
        scratch: &mut MoveScratch,
        f: &mut impl FnMut(JointMove),
    ) -> MoveCounts {
        let mut counts = MoveCounts::default();
        let cur = jp.query(q).host_of(op);
        for to in 0..self.cluster.len() {
            if to == cur {
                continue;
            }
            let mv = JointMove::Relocate { query: q, op, to };
            if self.is_valid_move_with(jp, states, mv, scratch) {
                counts.generated += 1;
                f(mv);
            } else {
                counts.rejected += 1;
            }
        }
        counts
    }

    /// One intra-query swap unit: every swap within query `q` whose first
    /// operand is `a`, in ascending second-operand order.
    fn intra_swaps_of(
        &self,
        q: usize,
        a: OpId,
        jp: &JointPlacement,
        states: &[VisitState],
        scratch: &mut MoveScratch,
        f: &mut impl FnMut(JointMove),
    ) -> MoveCounts {
        let mut counts = MoveCounts::default();
        for b in (a + 1)..self.queries[q].len() {
            if jp.query(q).host_of(a) == jp.query(q).host_of(b) {
                continue;
            }
            let mv = JointMove::Swap { qa: q, a, qb: q, b };
            if self.is_valid_move_with(jp, states, mv, scratch) {
                counts.generated += 1;
                f(mv);
            } else {
                counts.rejected += 1;
            }
        }
        counts
    }

    /// One cross-query swap unit: every exchange between queries `qa` and
    /// `qb` (`qa < qb`), in ascending (a, b) order. Same-host exchanges
    /// are no-ops and skipped without a check.
    fn cross_swaps_of(
        &self,
        qa: usize,
        qb: usize,
        jp: &JointPlacement,
        states: &[VisitState],
        scratch: &mut MoveScratch,
        f: &mut impl FnMut(JointMove),
    ) -> MoveCounts {
        let mut counts = MoveCounts::default();
        for a in 0..self.queries[qa].len() {
            for b in 0..self.queries[qb].len() {
                if jp.query(qa).host_of(a) == jp.query(qb).host_of(b) {
                    continue;
                }
                let mv = JointMove::Swap { qa, a, qb, b };
                if self.is_valid_move_with(jp, states, mv, scratch) {
                    counts.generated += 1;
                    f(mv);
                } else {
                    counts.rejected += 1;
                }
            }
        }
        counts
    }

    /// The enumeration units of the joint move space, in the exact order
    /// the serial walk visits them — the chunking grain of
    /// [`JointNeighborhood::neighbors_into_par`].
    fn units(&self) -> Vec<JointUnit> {
        let mut units = Vec::new();
        for (q, query) in self.queries.iter().enumerate() {
            for op in 0..query.len() {
                units.push(JointUnit::Reloc { q, op });
            }
        }
        for (q, query) in self.queries.iter().enumerate() {
            for a in 0..query.len() {
                units.push(JointUnit::Intra { q, a });
            }
        }
        for qa in 0..self.queries.len() {
            for qb in (qa + 1)..self.queries.len() {
                units.push(JointUnit::Cross { qa, qb });
            }
        }
        units
    }

    fn run_unit(
        &self,
        unit: JointUnit,
        jp: &JointPlacement,
        states: &[VisitState],
        scratch: &mut MoveScratch,
        f: &mut impl FnMut(JointMove),
    ) -> MoveCounts {
        match unit {
            JointUnit::Reloc { q, op } => self.relocations_of(q, op, jp, states, scratch, f),
            JointUnit::Intra { q, a } => self.intra_swaps_of(q, a, jp, states, scratch, f),
            JointUnit::Cross { qa, qb } => self.cross_swaps_of(qa, qb, jp, states, scratch, f),
        }
    }

    /// Streams the full joint neighborhood through `f` in the same
    /// deterministic order as [`JointNeighborhood::neighbors`], without
    /// materializing a move list.
    pub fn for_each_neighbor(
        &self,
        jp: &JointPlacement,
        states: &[VisitState],
        mut f: impl FnMut(JointMove),
    ) -> MoveCounts {
        let mut scratch = self.scratch.lock().expect("joint neighborhood scratch lock");
        let mut counts = MoveCounts::default();
        for (q, query) in self.queries.iter().enumerate() {
            for op in 0..query.len() {
                counts.absorb(self.relocations_of(q, op, jp, states, &mut scratch, &mut f));
            }
        }
        for (q, query) in self.queries.iter().enumerate() {
            for a in 0..query.len() {
                counts.absorb(self.intra_swaps_of(q, a, jp, states, &mut scratch, &mut f));
            }
        }
        for qa in 0..self.queries.len() {
            for qb in (qa + 1)..self.queries.len() {
                counts.absorb(self.cross_swaps_of(qa, qb, jp, states, &mut scratch, &mut f));
            }
        }
        counts
    }

    /// Fills `out` (cleared first) with the full joint neighborhood; no
    /// allocation once `out` has grown to the steady-state size.
    pub fn neighbors_into(&self, jp: &JointPlacement, states: &[VisitState], out: &mut Vec<JointMove>) -> MoveCounts {
        out.clear();
        self.for_each_neighbor(jp, states, |mv| out.push(mv))
    }

    /// The full joint neighborhood computed by chunking the enumeration
    /// units across rayon workers, each with its own scratch, and
    /// concatenating unit results in unit order — bitwise identical to
    /// [`JointNeighborhood::neighbors_into`] for any worker count.
    pub fn neighbors_into_par(
        &self,
        jp: &JointPlacement,
        states: &[VisitState],
        out: &mut Vec<JointMove>,
    ) -> MoveCounts {
        use rayon::prelude::*;
        let units = self.units();
        let unit_results: Vec<(Vec<JointMove>, MoveCounts)> = units
            .into_par_iter()
            .map(|unit| {
                let mut scratch = self.make_scratch();
                let mut unit_out = Vec::new();
                let counts = self.run_unit(unit, jp, states, &mut scratch, &mut |mv| unit_out.push(mv));
                (unit_out, counts)
            })
            .collect();
        out.clear();
        let mut counts = MoveCounts::default();
        for (unit_out, unit_counts) in unit_results {
            out.extend_from_slice(&unit_out);
            counts.absorb(unit_counts);
        }
        counts
    }

    /// The full joint neighborhood of `jp`, in deterministic order: all
    /// valid relocations by (query, op, host), then all valid intra-query
    /// swaps by (query, a, b), then all valid cross-query swaps by
    /// (qa, qb, a, b). `states` must be `self.visit_states(jp)`.
    pub fn neighbors(&self, jp: &JointPlacement, states: &[VisitState]) -> Vec<JointMove> {
        let mut out = Vec::new();
        self.neighbors_into(jp, states, &mut out);
        out
    }
}

/// One chunk of the joint enumeration: a unit's candidates are generated
/// serially by one worker, so concatenating units in order reproduces the
/// serial walk exactly.
#[derive(Clone, Copy)]
enum JointUnit {
    Reloc { q: usize, op: OpId },
    Intra { q: usize, a: OpId },
    Cross { qa: usize, qb: usize },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::placement::{colocate_on_strongest, sample_valid};
    use crate::ranges::FeatureRanges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(seed: u64, n_queries: usize) -> (Vec<Query>, Cluster) {
        let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
        let queries: Vec<Query> = (0..n_queries).map(|_| g.query()).collect();
        let cluster = g.cluster(4);
        (queries, cluster)
    }

    fn sample_joint(queries: &[&Query], cluster: &Cluster, seed: u64) -> JointPlacement {
        let mut rng = StdRng::seed_from_u64(seed);
        let placements = queries
            .iter()
            .map(|q| sample_valid(q, cluster, &mut rng).unwrap_or_else(|| colocate_on_strongest(q, cluster)))
            .collect();
        JointPlacement::new(cluster.len(), placements)
    }

    #[test]
    fn occupancy_counts_all_queries() {
        let (queries, cluster) = fixture(1, 3);
        let refs: Vec<&Query> = queries.iter().collect();
        let jp = sample_joint(&refs, &cluster, 2);
        let total_ops: usize = queries.iter().map(|q| q.len()).sum();
        assert_eq!(jp.occupancy().iter().sum::<usize>(), total_ops);
        assert_eq!(
            jp.occupancy(),
            count_occupancy(cluster.len(), jp.placements()).as_slice()
        );
    }

    #[test]
    fn apply_maintains_occupancy_incrementally() {
        let (queries, cluster) = fixture(3, 2);
        let refs: Vec<&Query> = queries.iter().collect();
        let mut jp = sample_joint(&refs, &cluster, 4);
        let jnb = JointNeighborhood::new(&refs, &cluster);
        for round in 0..4 {
            let states = jnb.visit_states(&jp);
            let neighbors = jnb.neighbors(&jp, &states);
            let Some(&mv) = neighbors.get(round % neighbors.len().max(1)) else {
                break;
            };
            jp = jp.apply(mv);
            assert!(jp.is_valid(&refs, &cluster), "{mv:?} broke validity");
            assert_eq!(
                jp.occupancy(),
                count_occupancy(cluster.len(), jp.placements()).as_slice(),
                "{mv:?} broke occupancy bookkeeping"
            );
        }
    }

    #[test]
    fn cross_query_swap_exchanges_hosts() {
        let (queries, cluster) = fixture(5, 2);
        let refs: Vec<&Query> = queries.iter().collect();
        let jp = sample_joint(&refs, &cluster, 6);
        let jnb = JointNeighborhood::new(&refs, &cluster);
        let states = jnb.visit_states(&jp);
        let cross = jnb
            .neighbors(&jp, &states)
            .into_iter()
            .find(|mv| matches!(mv, JointMove::Swap { qa, qb, .. } if qa != qb));
        if let Some(JointMove::Swap { qa, a, qb, b }) = cross {
            let next = jp.apply(JointMove::Swap { qa, a, qb, b });
            assert_eq!(next.query(qa).host_of(a), jp.query(qb).host_of(b));
            assert_eq!(next.query(qb).host_of(b), jp.query(qa).host_of(a));
            assert_eq!(next.occupancy(), jp.occupancy(), "swap must not change totals");
        }
    }
}
