//! Multi-query co-placement: joint placements of a *set* of queries on
//! one shared cluster, and the cross-query edit neighborhood a joint
//! optimizer searches.
//!
//! A single-query [`Placement`](crate::placement::Placement) maps one
//! query's operators to hosts; real clusters run many queries at once,
//! and co-resident operators shift each other's costs. A
//! [`JointPlacement`] bundles one placement per query together with the
//! per-host **occupancy** (how many operators, across all queries, are
//! resident on each host) — the quantity a contention-aware scorer
//! prices. Occupancy is maintained *incrementally* across edits, and
//! validity is still the per-query Fig. 5 rules: queries are logically
//! independent, so an edit touching one query only re-checks that query
//! (the cross-query coupling is soft, through contention, and is the
//! scorer's business, not the validity rules').
//!
//! [`JointNeighborhood`] generates the joint move space: relocating any
//! operator of any query, swapping hosts within a query, and swapping
//! hosts *across* queries. Every check reuses the single-query
//! incremental machinery of [`neighborhood`](crate::placement::neighborhood)
//! (capability rule on touched-incident edges, host-revisit masks over
//! the touched downstream cone), so a joint candidate check costs the
//! same as a single-query one per touched query.

use crate::hardware::{Cluster, HostId};
use crate::operators::{OpId, Query};
use crate::placement::neighborhood::{Move, Neighborhood, VisitState};
use crate::placement::Placement;
use serde::{Deserialize, Serialize};

/// A placement of several queries on one shared cluster: one
/// [`Placement`] per query plus the per-host operator occupancy.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JointPlacement {
    per_query: Vec<Placement>,
    occupancy: Vec<usize>,
}

impl JointPlacement {
    /// Bundles per-query placements into a joint placement on a cluster
    /// of `n_hosts` hosts, counting the initial occupancy.
    ///
    /// # Panics
    /// Panics when a placement references a host `>= n_hosts`.
    pub fn new(n_hosts: usize, per_query: Vec<Placement>) -> Self {
        let occupancy = count_occupancy(n_hosts, &per_query);
        JointPlacement { per_query, occupancy }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.per_query.len()
    }

    /// True when no queries are placed.
    pub fn is_empty(&self) -> bool {
        self.per_query.is_empty()
    }

    /// The placement of query `q`.
    pub fn query(&self, q: usize) -> &Placement {
        &self.per_query[q]
    }

    /// All per-query placements.
    pub fn placements(&self) -> &[Placement] {
        &self.per_query
    }

    /// Per-host operator occupancy across all queries (index = host id).
    pub fn occupancy(&self) -> &[usize] {
        &self.occupancy
    }

    /// Number of operators of query `q` resident on `host`.
    pub fn own_load(&self, q: usize, host: HostId) -> usize {
        self.per_query[q].assignment().iter().filter(|&&h| h == host).count()
    }

    /// The flattened assignment of all queries, in query order — the
    /// canonical duplicate-suppression key of a joint search (query
    /// arities are fixed per problem, so the concatenation is
    /// unambiguous).
    pub fn flattened(&self) -> Vec<HostId> {
        self.per_query
            .iter()
            .flat_map(|p| p.assignment().iter().copied())
            .collect()
    }

    /// True when every query's placement satisfies its Fig. 5 rules.
    pub fn is_valid(&self, queries: &[&Query], cluster: &Cluster) -> bool {
        self.per_query.len() == queries.len() && self.per_query.iter().zip(queries).all(|(p, q)| p.is_valid(q, cluster))
    }

    /// The joint placement produced by applying `mv`, with occupancy
    /// maintained incrementally (a relocation shifts one unit of load;
    /// swaps exchange residents, leaving every host's total unchanged).
    pub fn apply(&self, mv: JointMove) -> JointPlacement {
        let mut next = self.clone();
        match mv {
            JointMove::Relocate { query, op, to } => {
                let from = next.per_query[query].host_of(op);
                let mut a = next.per_query[query].assignment().to_vec();
                a[op] = to;
                next.per_query[query] = Placement::new(a);
                next.occupancy[from] -= 1;
                next.occupancy[to] += 1;
            }
            JointMove::Swap { qa, a, qb, b } => {
                let ha = next.per_query[qa].host_of(a);
                let hb = next.per_query[qb].host_of(b);
                if qa == qb {
                    let mut v = next.per_query[qa].assignment().to_vec();
                    v.swap(a, b);
                    next.per_query[qa] = Placement::new(v);
                } else {
                    let mut va = next.per_query[qa].assignment().to_vec();
                    let mut vb = next.per_query[qb].assignment().to_vec();
                    va[a] = hb;
                    vb[b] = ha;
                    next.per_query[qa] = Placement::new(va);
                    next.per_query[qb] = Placement::new(vb);
                }
                // Hosts exchange residents: totals are unchanged.
            }
        }
        next
    }
}

/// Counts per-host occupancy from scratch — the reference the
/// incremental bookkeeping is tested against.
///
/// # Panics
/// Panics when a placement references a host `>= n_hosts`.
pub fn count_occupancy(n_hosts: usize, placements: &[Placement]) -> Vec<usize> {
    let mut occ = vec![0usize; n_hosts];
    for p in placements {
        for &h in p.assignment() {
            assert!(h < n_hosts, "placement references host {h} outside the cluster");
            occ[h] += 1;
        }
    }
    occ
}

/// A single edit of a joint placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JointMove {
    /// Move one operator of one query to another host.
    Relocate {
        /// The query whose operator moves.
        query: usize,
        /// The operator to move.
        op: OpId,
        /// Its new host.
        to: HostId,
    },
    /// Exchange the hosts of two operators — of the same query or of two
    /// different queries (`(qa, a)` is kept lexicographically before
    /// `(qb, b)` by the generators so each exchange appears once).
    Swap {
        /// Query of the first operator.
        qa: usize,
        /// First operator.
        a: OpId,
        /// Query of the second operator.
        qb: usize,
        /// Second operator.
        b: OpId,
    },
}

/// Precomputed structure for the joint move space: one single-query
/// [`Neighborhood`] per query (shared cluster), reused across every
/// joint placement a search visits.
pub struct JointNeighborhood<'a> {
    queries: Vec<&'a Query>,
    cluster: &'a Cluster,
    nbs: Vec<Neighborhood<'a>>,
}

impl<'a> JointNeighborhood<'a> {
    /// Precomputes the per-query structure for one (queries, cluster)
    /// problem.
    pub fn new(queries: &[&'a Query], cluster: &'a Cluster) -> Self {
        JointNeighborhood {
            queries: queries.to_vec(),
            cluster,
            nbs: queries.iter().map(|q| Neighborhood::new(q, cluster)).collect(),
        }
    }

    /// Number of queries in the move space.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// The rule ③ visit state of every query's placement, computed once
    /// per joint placement and reused for every candidate edit.
    pub fn visit_states(&self, jp: &JointPlacement) -> Vec<VisitState> {
        self.nbs
            .iter()
            .zip(jp.placements())
            .map(|(nb, p)| nb.visit_state(p))
            .collect()
    }

    /// Checks whether applying `mv` to the (valid) joint placement `jp`
    /// yields another valid joint placement, re-validating only the
    /// touched queries incrementally. `states` must be
    /// `self.visit_states(jp)`.
    pub fn is_valid_move(&self, jp: &JointPlacement, states: &[VisitState], mv: JointMove) -> bool {
        match mv {
            JointMove::Relocate { query, op, to } => {
                self.nbs[query].is_valid_move(jp.query(query), &states[query], Move::Relocate { op, to })
            }
            JointMove::Swap { qa, a, qb, b } => {
                if qa == qb {
                    return self.nbs[qa].is_valid_move(jp.query(qa), &states[qa], Move::Swap { a, b });
                }
                let (ha, hb) = (jp.query(qa).host_of(a), jp.query(qb).host_of(b));
                if ha == hb {
                    return false; // no-op exchange
                }
                // Across queries the exchange decomposes into two
                // independent relocations (the queries share no edges),
                // each checked incrementally within its own query.
                self.nbs[qa].is_valid_move(jp.query(qa), &states[qa], Move::Relocate { op: a, to: hb })
                    && self.nbs[qb].is_valid_move(jp.query(qb), &states[qb], Move::Relocate { op: b, to: ha })
            }
        }
    }

    /// The full joint neighborhood of `jp`, in deterministic order: all
    /// valid relocations by (query, op, host), then all valid intra-query
    /// swaps by (query, a, b), then all valid cross-query swaps by
    /// (qa, qb, a, b). `states` must be `self.visit_states(jp)`.
    pub fn neighbors(&self, jp: &JointPlacement, states: &[VisitState]) -> Vec<JointMove> {
        let mut out = Vec::new();
        for (q, query) in self.queries.iter().enumerate() {
            for op in 0..query.len() {
                for to in 0..self.cluster.len() {
                    if to == jp.query(q).host_of(op) {
                        continue;
                    }
                    let mv = JointMove::Relocate { query: q, op, to };
                    if self.is_valid_move(jp, states, mv) {
                        out.push(mv);
                    }
                }
            }
        }
        for (q, query) in self.queries.iter().enumerate() {
            for a in 0..query.len() {
                for b in (a + 1)..query.len() {
                    let mv = JointMove::Swap { qa: q, a, qb: q, b };
                    if jp.query(q).host_of(a) != jp.query(q).host_of(b) && self.is_valid_move(jp, states, mv) {
                        out.push(mv);
                    }
                }
            }
        }
        for qa in 0..self.queries.len() {
            for qb in (qa + 1)..self.queries.len() {
                for a in 0..self.queries[qa].len() {
                    for b in 0..self.queries[qb].len() {
                        let mv = JointMove::Swap { qa, a, qb, b };
                        if self.is_valid_move(jp, states, mv) {
                            out.push(mv);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::placement::{colocate_on_strongest, sample_valid};
    use crate::ranges::FeatureRanges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(seed: u64, n_queries: usize) -> (Vec<Query>, Cluster) {
        let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
        let queries: Vec<Query> = (0..n_queries).map(|_| g.query()).collect();
        let cluster = g.cluster(4);
        (queries, cluster)
    }

    fn sample_joint(queries: &[&Query], cluster: &Cluster, seed: u64) -> JointPlacement {
        let mut rng = StdRng::seed_from_u64(seed);
        let placements = queries
            .iter()
            .map(|q| sample_valid(q, cluster, &mut rng).unwrap_or_else(|| colocate_on_strongest(q, cluster)))
            .collect();
        JointPlacement::new(cluster.len(), placements)
    }

    #[test]
    fn occupancy_counts_all_queries() {
        let (queries, cluster) = fixture(1, 3);
        let refs: Vec<&Query> = queries.iter().collect();
        let jp = sample_joint(&refs, &cluster, 2);
        let total_ops: usize = queries.iter().map(|q| q.len()).sum();
        assert_eq!(jp.occupancy().iter().sum::<usize>(), total_ops);
        assert_eq!(
            jp.occupancy(),
            count_occupancy(cluster.len(), jp.placements()).as_slice()
        );
    }

    #[test]
    fn apply_maintains_occupancy_incrementally() {
        let (queries, cluster) = fixture(3, 2);
        let refs: Vec<&Query> = queries.iter().collect();
        let mut jp = sample_joint(&refs, &cluster, 4);
        let jnb = JointNeighborhood::new(&refs, &cluster);
        for round in 0..4 {
            let states = jnb.visit_states(&jp);
            let neighbors = jnb.neighbors(&jp, &states);
            let Some(&mv) = neighbors.get(round % neighbors.len().max(1)) else {
                break;
            };
            jp = jp.apply(mv);
            assert!(jp.is_valid(&refs, &cluster), "{mv:?} broke validity");
            assert_eq!(
                jp.occupancy(),
                count_occupancy(cluster.len(), jp.placements()).as_slice(),
                "{mv:?} broke occupancy bookkeeping"
            );
        }
    }

    #[test]
    fn cross_query_swap_exchanges_hosts() {
        let (queries, cluster) = fixture(5, 2);
        let refs: Vec<&Query> = queries.iter().collect();
        let jp = sample_joint(&refs, &cluster, 6);
        let jnb = JointNeighborhood::new(&refs, &cluster);
        let states = jnb.visit_states(&jp);
        let cross = jnb
            .neighbors(&jp, &states)
            .into_iter()
            .find(|mv| matches!(mv, JointMove::Swap { qa, qb, .. } if qa != qb));
        if let Some(JointMove::Swap { qa, a, qb, b }) = cross {
            let next = jp.apply(JointMove::Swap { qa, a, qb, b });
            assert_eq!(next.query(qa).host_of(a), jp.query(qb).host_of(b));
            assert_eq!(next.query(qb).host_of(b), jp.query(qa).host_of(a));
            assert_eq!(next.occupancy(), jp.occupancy(), "swap must not change totals");
        }
    }
}
