//! Transferable feature encoding (Table I).
//!
//! Every graph node — operator or host — is described by a fixed-width
//! feature vector specific to its node type. Numeric features with large
//! value ranges (rates, window sizes, hardware resources) are `log1p`
//! scaled so the model inter- and extrapolates in log space, which is what
//! makes the features *transferable* to unseen magnitudes.

use crate::datatypes::TupleSchema;
use crate::hardware::Host;
use crate::operators::{OpId, OpKind, Query, WindowPolicy, WindowSpec, WindowType};
use serde::{Deserialize, Serialize};

/// The node types of the joint operator-resource graph, each with its own
/// encoder in the GNN.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeType {
    /// Data source (spout).
    Source,
    /// Filter operator.
    Filter,
    /// Windowed join operator.
    Join,
    /// Windowed aggregation operator.
    Aggregate,
    /// Sink operator.
    Sink,
    /// Hardware host.
    Host,
}

impl NodeType {
    /// All node types, in encoder registration order.
    pub const ALL: [NodeType; 6] = [
        NodeType::Source,
        NodeType::Filter,
        NodeType::Join,
        NodeType::Aggregate,
        NodeType::Sink,
        NodeType::Host,
    ];

    /// Width of the feature vector for this node type.
    pub fn feature_width(self) -> usize {
        match self {
            NodeType::Source => 5,
            NodeType::Filter => 13,
            NodeType::Join => 13,
            NodeType::Aggregate => 21,
            NodeType::Sink => 1,
            NodeType::Host => 4,
        }
    }

    /// Node type of an operator.
    pub fn of_op(op: &OpKind) -> NodeType {
        match op {
            OpKind::Source(_) => NodeType::Source,
            OpKind::Filter(_) => NodeType::Filter,
            OpKind::WindowJoin(_) => NodeType::Join,
            OpKind::WindowAggregate(_) => NodeType::Aggregate,
            OpKind::Sink => NodeType::Sink,
        }
    }

    /// Short name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            NodeType::Source => "source",
            NodeType::Filter => "filter",
            NodeType::Join => "join",
            NodeType::Aggregate => "aggregate",
            NodeType::Sink => "sink",
            NodeType::Host => "host",
        }
    }
}

fn log1p(v: f64) -> f32 {
    (v.max(0.0)).ln_1p() as f32
}

fn one_hot(len: usize, idx: usize) -> Vec<f32> {
    let mut v = vec![0.0; len];
    v[idx] = 1.0;
    v
}

fn window_features(w: &WindowSpec) -> Vec<f32> {
    let mut f = Vec::with_capacity(6);
    f.extend(match w.window_type {
        WindowType::Sliding => [1.0, 0.0],
        WindowType::Tumbling => [0.0, 1.0],
    });
    f.extend(match w.policy {
        WindowPolicy::CountBased => [1.0, 0.0],
        WindowPolicy::TimeBased => [0.0, 1.0],
    });
    f.push(log1p(w.size));
    f.push(log1p(w.slide));
    f
}

/// Encodes the transferable features of one operator node.
///
/// `schemas` must be `query.output_schemas()` and `est_sel` the estimated
/// selectivity for this operator (ignored for sources and sinks).
pub fn op_features(query: &Query, op: OpId, schemas: &[TupleSchema], est_sel: f64) -> Vec<f32> {
    let width_in = query.input_width(op, schemas) as f32;
    let width_out = schemas[op].width() as f32;
    let sel = est_sel.clamp(1e-6, 1.0);
    let f = match query.op(op) {
        OpKind::Source(s) => {
            let (i, st, d) = s.schema.type_counts();
            vec![log1p(s.event_rate), width_out, i as f32, st as f32, d as f32]
        }
        OpKind::Filter(f) => {
            let mut v = one_hot(7, f.function.one_hot_index());
            v.extend(one_hot(3, f.literal_type.one_hot_index()));
            v.push(sel as f32);
            v.push(width_in);
            v.push(width_out);
            v
        }
        OpKind::WindowJoin(j) => {
            let mut v = one_hot(3, j.key_type.one_hot_index());
            v.push(sel as f32);
            // Join selectivities span orders of magnitude; add a log-scaled
            // copy so small differences near zero stay distinguishable.
            v.push((sel.ln() / 10.0) as f32);
            v.extend(window_features(&j.window));
            v.push(width_in);
            v.push(width_out);
            v
        }
        OpKind::WindowAggregate(a) => {
            let mut v = one_hot(4, a.function.one_hot_index());
            v.extend(one_hot(3, a.agg_type.one_hot_index()));
            v.extend(match a.group_by {
                Some(d) => one_hot(4, d.one_hot_index()),
                None => one_hot(4, 3),
            });
            v.push(sel as f32);
            v.push((sel.ln() / 10.0) as f32);
            v.extend(window_features(&a.window));
            v.push(width_in);
            v.push(width_out);
            v
        }
        OpKind::Sink => vec![width_in],
    };
    debug_assert_eq!(f.len(), NodeType::of_op(query.op(op)).feature_width());
    f
}

/// Encodes the transferable hardware features of one host node.
pub fn host_features(host: &Host) -> Vec<f32> {
    vec![
        log1p(host.cpu),
        log1p(host.ram_mb),
        log1p(host.bandwidth_mbits),
        log1p(host.latency_ms),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::ranges::FeatureRanges;
    use crate::selectivity::SelectivityEstimator;

    #[test]
    fn feature_widths_consistent_for_generated_queries() {
        let mut g = WorkloadGenerator::new(1, FeatureRanges::training());
        let mut e = SelectivityEstimator::realistic(2);
        for _ in 0..100 {
            let q = g.query();
            let schemas = q.output_schemas();
            let sels = e.estimate_query(&q);
            for (id, op) in q.ops() {
                let f = op_features(&q, id, &schemas, sels[id]);
                assert_eq!(f.len(), NodeType::of_op(op).feature_width());
                assert!(f.iter().all(|v| v.is_finite()));
            }
        }
    }

    #[test]
    fn host_features_log_scaled() {
        let h = Host {
            cpu: 800.0,
            ram_mb: 32000.0,
            bandwidth_mbits: 10000.0,
            latency_ms: 1.0,
        };
        let f = host_features(&h);
        assert_eq!(f.len(), NodeType::Host.feature_width());
        assert!((f[0] - (801.0f32).ln()).abs() < 1e-4);
        assert!(
            f.iter().all(|&v| (0.0..15.0).contains(&v)),
            "log scaling keeps magnitudes small: {f:?}"
        );
    }

    #[test]
    fn one_hot_is_exclusive() {
        let v = one_hot(5, 2);
        assert_eq!(v.iter().sum::<f32>(), 1.0);
        assert_eq!(v[2], 1.0);
    }

    #[test]
    fn stronger_hardware_has_larger_features() {
        let weak = Host {
            cpu: 50.0,
            ram_mb: 1000.0,
            bandwidth_mbits: 25.0,
            latency_ms: 160.0,
        };
        let strong = Host {
            cpu: 800.0,
            ram_mb: 32000.0,
            bandwidth_mbits: 10000.0,
            latency_ms: 160.0,
        };
        let fw = host_features(&weak);
        let fs = host_features(&strong);
        assert!(fs[0] > fw[0] && fs[1] > fw[1] && fs[2] > fw[2]);
        assert_eq!(fs[3], fw[3]);
    }
}
