//! Streaming operators and the logical query DAG.
//!
//! A [`Query`] is a directed acyclic graph of algebraic streaming operators
//! (§III-A of the paper): sources describe incoming data streams, `filter`,
//! windowed `aggregate` and windowed `join` transform them, and a single
//! sink terminates the plan. Edges are the *logical data flow*.

use crate::datatypes::{DataType, TupleSchema};
use serde::{Deserialize, Serialize};

/// Index of an operator inside a [`Query`].
pub type OpId = usize;

/// Shifting strategy of a window (Table I: `window type`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowType {
    /// Window advances by `slide < size` — overlapping windows.
    Sliding,
    /// Window advances by its full size — non-overlapping.
    Tumbling,
}

/// Counting mode of a window (Table I: `window policy`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowPolicy {
    /// Window size measured in tuples.
    CountBased,
    /// Window size measured in seconds.
    TimeBased,
}

/// Window configuration shared by windowed joins and aggregations.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WindowSpec {
    /// Sliding or tumbling.
    pub window_type: WindowType,
    /// Count- or time-based.
    pub policy: WindowPolicy,
    /// Size in tuples (count-based) or seconds (time-based).
    pub size: f64,
    /// Slide in the same unit as `size`; equals `size` for tumbling windows.
    pub slide: f64,
}

impl WindowSpec {
    /// Number of tuples held by one window instance at a stream rate of
    /// `rate` tuples/second.
    pub fn tuples_in_window(&self, rate: f64) -> f64 {
        match self.policy {
            WindowPolicy::CountBased => self.size,
            WindowPolicy::TimeBased => self.size * rate,
        }
    }

    /// Seconds between successive window emissions at stream rate `rate`.
    pub fn emission_period(&self, rate: f64) -> f64 {
        let slide = self.slide.max(1e-9);
        match self.policy {
            WindowPolicy::CountBased => {
                if rate <= 0.0 {
                    f64::INFINITY
                } else {
                    slide / rate
                }
            }
            WindowPolicy::TimeBased => slide,
        }
    }
}

/// Comparison function of a filter predicate (Table II: `filter function`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterFunction {
    /// `<`
    Less,
    /// `>`
    Greater,
    /// `<=`
    LessEq,
    /// `>=`
    GreaterEq,
    /// `!=`
    NotEq,
    /// String prefix test.
    StartsWith,
    /// String suffix test.
    EndsWith,
}

impl FilterFunction {
    /// All filter functions of Table II.
    pub const ALL: [FilterFunction; 7] = [
        FilterFunction::Less,
        FilterFunction::Greater,
        FilterFunction::LessEq,
        FilterFunction::GreaterEq,
        FilterFunction::NotEq,
        FilterFunction::StartsWith,
        FilterFunction::EndsWith,
    ];

    /// Index used for one-hot feature encoding.
    pub fn one_hot_index(self) -> usize {
        Self::ALL.iter().position(|f| *f == self).expect("member of ALL")
    }

    /// Relative evaluation cost (string scans cost more than comparisons).
    pub fn eval_cost(self) -> f64 {
        match self {
            FilterFunction::StartsWith | FilterFunction::EndsWith => 2.5,
            _ => 1.0,
        }
    }
}

/// Aggregation function (Table II: `agg. function`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunction {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Mean,
    /// Paper lists `avg` alongside `mean`; kept as a distinct label.
    Avg,
}

impl AggFunction {
    /// All aggregation functions of Table II.
    pub const ALL: [AggFunction; 4] = [AggFunction::Min, AggFunction::Max, AggFunction::Mean, AggFunction::Avg];

    /// Index used for one-hot feature encoding.
    pub fn one_hot_index(self) -> usize {
        Self::ALL.iter().position(|f| *f == self).expect("member of ALL")
    }
}

/// A data source (spout): describes the characteristics of one unbounded
/// input stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SourceSpec {
    /// Tuples emitted per second at the event broker.
    pub event_rate: f64,
    /// Schema of the emitted tuples.
    pub schema: TupleSchema,
}

/// A filter operator with one or more conjunctive predicates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FilterSpec {
    /// Comparison function of the predicate.
    pub function: FilterFunction,
    /// Data type of the comparison literal.
    pub literal_type: DataType,
    /// True selectivity per Definition 6 (outgoing / incoming tuples).
    pub selectivity: f64,
}

/// A windowed aggregation operator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Aggregation function applied per window (and group).
    pub function: AggFunction,
    /// Data type of the aggregated attribute.
    pub agg_type: DataType,
    /// Data type of the group-by attribute, if any.
    pub group_by: Option<DataType>,
    /// Window configuration.
    pub window: WindowSpec,
    /// True selectivity per Definition 8 (distinct groups / window length).
    pub selectivity: f64,
}

/// A windowed join over two input streams.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JoinSpec {
    /// Data type of the join key.
    pub key_type: DataType,
    /// Window configuration applied to both inputs.
    pub window: WindowSpec,
    /// True selectivity per Definition 7 (qualifying pairs / cross product).
    pub selectivity: f64,
}

/// One operator of the query DAG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// Data source.
    Source(SourceSpec),
    /// Filter.
    Filter(FilterSpec),
    /// Windowed aggregation.
    WindowAggregate(AggSpec),
    /// Windowed join.
    WindowJoin(JoinSpec),
    /// Terminal sink persisting/forwarding results.
    Sink,
}

impl OpKind {
    /// Short lowercase name, used in diagnostics and feature logs.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Source(_) => "source",
            OpKind::Filter(_) => "filter",
            OpKind::WindowAggregate(_) => "aggregate",
            OpKind::WindowJoin(_) => "join",
            OpKind::Sink => "sink",
        }
    }
}

/// A streaming query: operators plus logical data-flow edges.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Query {
    ops: Vec<OpKind>,
    /// Directed edges `(from, to)` along the data flow.
    edges: Vec<(OpId, OpId)>,
}

impl Query {
    /// Creates a query and validates its structure.
    ///
    /// # Panics
    /// Panics if the DAG is malformed (see [`Query::validate`]).
    pub fn new(ops: Vec<OpKind>, edges: Vec<(OpId, OpId)>) -> Self {
        let q = Query { ops, edges };
        q.validate().expect("malformed query");
        q
    }

    /// Structural validation: exactly one sink, at least one source, edges
    /// in range, acyclic, sources have no inputs, sink has no outputs,
    /// joins have exactly two inputs, filters/aggregates exactly one.
    pub fn validate(&self) -> Result<(), String> {
        if self.ops.is_empty() {
            return Err("empty query".into());
        }
        for &(a, b) in &self.edges {
            if a >= self.ops.len() || b >= self.ops.len() {
                return Err(format!("edge ({a},{b}) out of range"));
            }
            if a == b {
                return Err("self loop".into());
            }
        }
        let sinks = self.ops.iter().filter(|o| matches!(o, OpKind::Sink)).count();
        if sinks != 1 {
            return Err(format!("expected exactly 1 sink, found {sinks}"));
        }
        if !self.ops.iter().any(|o| matches!(o, OpKind::Source(_))) {
            return Err("no sources".into());
        }
        for (id, op) in self.ops.iter().enumerate() {
            let fan_in = self.upstream(id).len();
            let fan_out = self.downstream(id).len();
            match op {
                OpKind::Source(_) => {
                    if fan_in != 0 {
                        return Err(format!("source {id} has inputs"));
                    }
                    if fan_out == 0 {
                        return Err(format!("source {id} is disconnected"));
                    }
                }
                OpKind::Sink => {
                    if fan_out != 0 {
                        return Err(format!("sink {id} has outputs"));
                    }
                    if fan_in == 0 {
                        return Err(format!("sink {id} is disconnected"));
                    }
                }
                OpKind::WindowJoin(_) => {
                    if fan_in != 2 {
                        return Err(format!("join {id} has {fan_in} inputs, expected 2"));
                    }
                }
                OpKind::Filter(_) | OpKind::WindowAggregate(_) => {
                    if fan_in != 1 {
                        return Err(format!("{} {id} has {fan_in} inputs, expected 1", op.name()));
                    }
                    if fan_out == 0 {
                        return Err(format!("{} {id} is disconnected", op.name()));
                    }
                }
            }
        }
        // Acyclicity: topo_order errors on cycles.
        self.topo_order().map(|_| ())
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the query has no operators (never true for valid queries).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operator by id.
    pub fn op(&self, id: OpId) -> &OpKind {
        &self.ops[id]
    }

    /// All operators with their ids.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &OpKind)> {
        self.ops.iter().enumerate()
    }

    /// Logical data-flow edges.
    pub fn edges(&self) -> &[(OpId, OpId)] {
        &self.edges
    }

    /// Ids of operators feeding directly into `id`.
    pub fn upstream(&self, id: OpId) -> Vec<OpId> {
        self.edges.iter().filter(|&&(_, b)| b == id).map(|&(a, _)| a).collect()
    }

    /// Ids of operators directly consuming the output of `id`.
    pub fn downstream(&self, id: OpId) -> Vec<OpId> {
        self.edges.iter().filter(|&&(a, _)| a == id).map(|&(_, b)| b).collect()
    }

    /// Ids of all sources.
    pub fn sources(&self) -> Vec<OpId> {
        self.ops()
            .filter(|(_, o)| matches!(o, OpKind::Source(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Id of the sink.
    pub fn sink(&self) -> OpId {
        self.ops()
            .find(|(_, o)| matches!(o, OpKind::Sink))
            .map(|(i, _)| i)
            .expect("validated query has a sink")
    }

    /// Topological order along the data flow (sources first).
    pub fn topo_order(&self) -> Result<Vec<OpId>, String> {
        let n = self.ops.len();
        let mut in_deg = vec![0usize; n];
        for &(_, b) in &self.edges {
            in_deg[b] += 1;
        }
        let mut queue: Vec<OpId> = (0..n).filter(|&i| in_deg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &(a, b) in &self.edges {
                if a == v {
                    in_deg[b] -= 1;
                    if in_deg[b] == 0 {
                        queue.push(b);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err("query graph contains a cycle".into())
        }
    }

    /// Output schema of every operator, computed along the data flow.
    ///
    /// Filters pass their input schema through; aggregations emit a compact
    /// result tuple (group key + aggregate, or just the aggregate); joins
    /// concatenate both input schemas.
    pub fn output_schemas(&self) -> Vec<TupleSchema> {
        let order = self.topo_order().expect("validated");
        let mut out: Vec<Option<TupleSchema>> = vec![None; self.ops.len()];
        for id in order {
            let ups = self.upstream(id);
            let schema = match &self.ops[id] {
                OpKind::Source(s) => s.schema.clone(),
                OpKind::Filter(_) => out[ups[0]].clone().expect("upstream visited"),
                OpKind::WindowAggregate(a) => {
                    let mut attrs = vec![a.agg_type];
                    if let Some(g) = a.group_by {
                        attrs.push(g);
                    }
                    // window start/end timestamps
                    attrs.push(DataType::Int);
                    attrs.push(DataType::Int);
                    TupleSchema::new(attrs)
                }
                OpKind::WindowJoin(_) => {
                    let a = out[ups[0]].clone().expect("upstream visited");
                    let b = out[ups[1]].clone().expect("upstream visited");
                    a.concat(&b)
                }
                OpKind::Sink => out[ups[0]].clone().expect("upstream visited"),
            };
            out[id] = Some(schema);
        }
        out.into_iter().map(|s| s.expect("all visited")).collect()
    }

    /// Average input tuple width of an operator (averaged over its inputs,
    /// matching the `tuple width in` feature of Table I); 0 for sources.
    pub fn input_width(&self, id: OpId, schemas: &[TupleSchema]) -> f64 {
        let ups = self.upstream(id);
        if ups.is_empty() {
            0.0
        } else {
            ups.iter().map(|&u| schemas[u].width() as f64).sum::<f64>() / ups.len() as f64
        }
    }

    /// Counts of each operator kind `(sources, filters, aggs, joins)`.
    pub fn kind_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for op in &self.ops {
            match op {
                OpKind::Source(_) => c.0 += 1,
                OpKind::Filter(_) => c.1 += 1,
                OpKind::WindowAggregate(_) => c.2 += 1,
                OpKind::WindowJoin(_) => c.3 += 1,
                OpKind::Sink => {}
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_schema() -> TupleSchema {
        TupleSchema::new(vec![DataType::Int, DataType::Double, DataType::String])
    }

    pub(crate) fn linear_query() -> Query {
        Query::new(
            vec![
                OpKind::Source(SourceSpec {
                    event_rate: 100.0,
                    schema: simple_schema(),
                }),
                OpKind::Filter(FilterSpec {
                    function: FilterFunction::Less,
                    literal_type: DataType::Int,
                    selectivity: 0.5,
                }),
                OpKind::Sink,
            ],
            vec![(0, 1), (1, 2)],
        )
    }

    fn join_query() -> Query {
        let w = WindowSpec {
            window_type: WindowType::Tumbling,
            policy: WindowPolicy::CountBased,
            size: 10.0,
            slide: 10.0,
        };
        Query::new(
            vec![
                OpKind::Source(SourceSpec {
                    event_rate: 100.0,
                    schema: simple_schema(),
                }),
                OpKind::Source(SourceSpec {
                    event_rate: 50.0,
                    schema: simple_schema(),
                }),
                OpKind::WindowJoin(JoinSpec {
                    key_type: DataType::Int,
                    window: w,
                    selectivity: 0.01,
                }),
                OpKind::Sink,
            ],
            vec![(0, 2), (1, 2), (2, 3)],
        )
    }

    #[test]
    fn linear_query_valid() {
        let q = linear_query();
        assert_eq!(q.sources(), vec![0]);
        assert_eq!(q.sink(), 2);
        assert_eq!(q.upstream(1), vec![0]);
        assert_eq!(q.downstream(1), vec![2]);
    }

    #[test]
    fn join_schemas_concat() {
        let q = join_query();
        let schemas = q.output_schemas();
        assert_eq!(schemas[2].width(), 6);
        assert_eq!(q.input_width(3, &schemas), 6.0);
        assert_eq!(q.input_width(2, &schemas), 3.0);
    }

    #[test]
    fn agg_output_schema_compact() {
        let w = WindowSpec {
            window_type: WindowType::Sliding,
            policy: WindowPolicy::TimeBased,
            size: 2.0,
            slide: 1.0,
        };
        let q = Query::new(
            vec![
                OpKind::Source(SourceSpec {
                    event_rate: 10.0,
                    schema: simple_schema(),
                }),
                OpKind::WindowAggregate(AggSpec {
                    function: AggFunction::Mean,
                    agg_type: DataType::Double,
                    group_by: Some(DataType::String),
                    window: w,
                    selectivity: 0.3,
                }),
                OpKind::Sink,
            ],
            vec![(0, 1), (1, 2)],
        );
        let schemas = q.output_schemas();
        assert_eq!(schemas[1].width(), 4);
    }

    #[test]
    fn topo_order_sources_before_sink() {
        let q = join_query();
        let order = q.topo_order().unwrap();
        let pos = |x: OpId| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn validation_rejects_two_sinks() {
        let q = Query {
            ops: vec![
                OpKind::Source(SourceSpec {
                    event_rate: 1.0,
                    schema: simple_schema(),
                }),
                OpKind::Sink,
                OpKind::Sink,
            ],
            edges: vec![(0, 1), (0, 2)],
        };
        assert!(q.validate().is_err());
    }

    #[test]
    fn validation_rejects_join_with_one_input() {
        let w = WindowSpec {
            window_type: WindowType::Tumbling,
            policy: WindowPolicy::CountBased,
            size: 5.0,
            slide: 5.0,
        };
        let q = Query {
            ops: vec![
                OpKind::Source(SourceSpec {
                    event_rate: 1.0,
                    schema: simple_schema(),
                }),
                OpKind::WindowJoin(JoinSpec {
                    key_type: DataType::Int,
                    window: w,
                    selectivity: 0.1,
                }),
                OpKind::Sink,
            ],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(q.validate().is_err());
    }

    #[test]
    fn validation_rejects_cycle() {
        let q = Query {
            ops: vec![
                OpKind::Source(SourceSpec {
                    event_rate: 1.0,
                    schema: simple_schema(),
                }),
                OpKind::Filter(FilterSpec {
                    function: FilterFunction::Greater,
                    literal_type: DataType::Int,
                    selectivity: 0.5,
                }),
                OpKind::Filter(FilterSpec {
                    function: FilterFunction::Greater,
                    literal_type: DataType::Int,
                    selectivity: 0.5,
                }),
                OpKind::Sink,
            ],
            edges: vec![(0, 1), (1, 2), (2, 1), (1, 3)],
        };
        assert!(q.validate().is_err());
    }

    #[test]
    fn window_tuple_math() {
        let count = WindowSpec {
            window_type: WindowType::Sliding,
            policy: WindowPolicy::CountBased,
            size: 100.0,
            slide: 50.0,
        };
        assert_eq!(count.tuples_in_window(37.0), 100.0);
        assert!((count.emission_period(10.0) - 5.0).abs() < 1e-9);
        let time = WindowSpec {
            window_type: WindowType::Tumbling,
            policy: WindowPolicy::TimeBased,
            size: 4.0,
            slide: 4.0,
        };
        assert_eq!(time.tuples_in_window(25.0), 100.0);
        assert_eq!(time.emission_period(25.0), 4.0);
    }

    #[test]
    fn kind_counts() {
        let q = join_query();
        assert_eq!(q.kind_counts(), (2, 0, 0, 1));
    }
}
