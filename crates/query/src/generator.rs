//! Random workload, hardware and placement generation.
//!
//! Reproduces the benchmark generation procedure of §VI: queries are drawn
//! from the three templates of Fig. 6 (linear filter queries, 2-way joins
//! and 3-way joins at 35/34/31%), decorated with a random number of filter
//! predicates (35% one, 34% two, 24% three, 6% four filters, 1% none) and
//! an aggregation in half of the queries; every data stream gets a random
//! tuple width and event rate; every window gets a random type, policy,
//! size and slide, all from the configured [`FeatureRanges`].

use crate::datatypes::{DataType, TupleSchema};
use crate::hardware::{Cluster, Host};
use crate::operators::{
    AggFunction, AggSpec, FilterFunction, FilterSpec, JoinSpec, OpId, OpKind, Query, SourceSpec, WindowPolicy,
    WindowSpec, WindowType,
};
use crate::placement::Placement;
use crate::ranges::FeatureRanges;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three query templates of Fig. 6.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryTemplate {
    /// `source → {filter} → [agg] → sink`.
    Linear,
    /// Two sources joined, then optional filters/aggregation.
    TwoWayJoin,
    /// Three sources, two joins, then optional filters/aggregation.
    ThreeWayJoin,
}

impl QueryTemplate {
    /// All templates with their benchmark shares (35/34/31, §VI).
    pub const DISTRIBUTION: [(QueryTemplate, f64); 3] = [
        (QueryTemplate::Linear, 0.35),
        (QueryTemplate::TwoWayJoin, 0.34),
        (QueryTemplate::ThreeWayJoin, 0.31),
    ];

    /// Name used in result tables (Fig. 8 / Fig. 9).
    pub fn name(self) -> &'static str {
        match self {
            QueryTemplate::Linear => "Linear",
            QueryTemplate::TwoWayJoin => "2-Way-Join",
            QueryTemplate::ThreeWayJoin => "3-Way-Join",
        }
    }
}

/// Deterministic workload generator.
pub struct WorkloadGenerator {
    rng: StdRng,
    ranges: FeatureRanges,
}

impl WorkloadGenerator {
    /// Creates a generator with the given seed and feature ranges.
    pub fn new(seed: u64, ranges: FeatureRanges) -> Self {
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(seed),
            ranges,
        }
    }

    /// The feature ranges this generator samples from.
    pub fn ranges(&self) -> &FeatureRanges {
        &self.ranges
    }

    fn pick<T: Copy>(&mut self, values: &[T]) -> T {
        *values.choose(&mut self.rng).expect("non-empty range")
    }

    /// Samples a query template according to the benchmark distribution.
    pub fn sample_template(&mut self) -> QueryTemplate {
        let x: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (t, p) in QueryTemplate::DISTRIBUTION {
            acc += p;
            if x < acc {
                return t;
            }
        }
        QueryTemplate::ThreeWayJoin
    }

    /// Samples the total number of filter predicates in a query
    /// (distribution from §VI).
    pub fn sample_filter_count(&mut self) -> usize {
        let x: f64 = self.rng.gen();
        match x {
            x if x < 0.35 => 1,
            x if x < 0.69 => 2,
            x if x < 0.93 => 3,
            x if x < 0.99 => 4,
            _ => 0,
        }
    }

    fn sample_schema(&mut self) -> TupleSchema {
        let width = self.pick(&self.ranges.tuple_widths.clone());
        let attributes = (0..width).map(|_| self.pick(&DataType::ALL)).collect();
        TupleSchema::new(attributes)
    }

    fn sample_source(&mut self, template: QueryTemplate) -> SourceSpec {
        let rates = match template {
            QueryTemplate::Linear => self.ranges.event_rate_linear.clone(),
            QueryTemplate::TwoWayJoin => self.ranges.event_rate_two_way.clone(),
            QueryTemplate::ThreeWayJoin => self.ranges.event_rate_three_way.clone(),
        };
        SourceSpec {
            event_rate: self.pick(&rates),
            schema: self.sample_schema(),
        }
    }

    /// Samples a window configuration from the ranges.
    pub fn sample_window(&mut self) -> WindowSpec {
        let window_type = if self.rng.gen_bool(0.5) {
            WindowType::Sliding
        } else {
            WindowType::Tumbling
        };
        let policy = if self.rng.gen_bool(0.5) {
            WindowPolicy::CountBased
        } else {
            WindowPolicy::TimeBased
        };
        let size = match policy {
            WindowPolicy::CountBased => self.pick(&self.ranges.window_size_count.clone()),
            WindowPolicy::TimeBased => self.pick(&self.ranges.window_size_time.clone()),
        };
        let slide = match window_type {
            WindowType::Tumbling => size,
            WindowType::Sliding => {
                let (lo, hi) = self.ranges.slide_factor;
                let f = self.rng.gen_range(lo..hi);
                (size * f).max(1e-3)
            }
        };
        WindowSpec {
            window_type,
            policy,
            size,
            slide,
        }
    }

    fn sample_filter(&mut self) -> FilterSpec {
        FilterSpec {
            function: self.pick(&FilterFunction::ALL),
            literal_type: self.pick(&DataType::ALL),
            selectivity: self.rng.gen_range(0.05..1.0),
        }
    }

    fn sample_join(&mut self) -> JoinSpec {
        // Join selectivities are log-uniform: realistic equi-joins qualify
        // a small fraction of the cross product.
        let log_sel = self.rng.gen_range((1e-3f64).ln()..(0.1f64).ln());
        JoinSpec {
            key_type: self.pick(&DataType::ALL),
            window: self.sample_window(),
            selectivity: log_sel.exp(),
        }
    }

    fn sample_agg(&mut self) -> AggSpec {
        let group_by = if self.rng.gen_bool(0.5) {
            Some(self.pick(&DataType::ALL))
        } else {
            None
        };
        AggSpec {
            function: self.pick(&AggFunction::ALL),
            agg_type: self.pick(&[DataType::Int, DataType::Double]),
            group_by,
            window: self.sample_window(),
            selectivity: self.rng.gen_range(0.02..1.0),
        }
    }

    /// Generates a random query following the benchmark distribution.
    pub fn query(&mut self) -> Query {
        let template = self.sample_template();
        self.query_of(template)
    }

    /// Generates a random query of a specific template.
    pub fn query_of(&mut self, template: QueryTemplate) -> Query {
        let n_filters = self.sample_filter_count();
        let with_agg = self.rng.gen_bool(0.5);
        self.query_with(template, n_filters, with_agg)
    }

    /// Generates a query with explicit filter count and aggregation flag.
    /// The filters are distributed over the template's filter slots
    /// (after each source and after the last join).
    pub fn query_with(&mut self, template: QueryTemplate, n_filters: usize, with_agg: bool) -> Query {
        let n_sources = match template {
            QueryTemplate::Linear => 1,
            QueryTemplate::TwoWayJoin => 2,
            QueryTemplate::ThreeWayJoin => 3,
        };
        // Slot i < n_sources: after source i. Slot n_sources: post-join
        // (or mid-chain for linear queries).
        let n_slots = n_sources + 1;
        let mut per_slot = vec![0usize; n_slots];
        for _ in 0..n_filters {
            // Training data contains at most one consecutive filter per
            // slot where possible (Exp 5 introduces longer chains as the
            // *unseen* pattern); prefer empty slots first.
            let empty: Vec<usize> = (0..n_slots).filter(|&s| per_slot[s] == 0).collect();
            let slot = if empty.is_empty() {
                self.rng.gen_range(0..n_slots)
            } else {
                *empty.choose(&mut self.rng).expect("non-empty")
            };
            per_slot[slot] += 1;
        }

        let mut ops: Vec<OpKind> = Vec::new();
        let mut edges: Vec<(OpId, OpId)> = Vec::new();
        let mut branch_heads: Vec<OpId> = Vec::new();

        for &slot_filters in per_slot.iter().take(n_sources) {
            let src = ops.len();
            ops.push(OpKind::Source(self.sample_source(template)));
            let mut head = src;
            for _ in 0..slot_filters {
                let f = ops.len();
                ops.push(OpKind::Filter(self.sample_filter()));
                edges.push((head, f));
                head = f;
            }
            branch_heads.push(head);
        }

        // Join the branches pairwise left to right.
        let mut head = branch_heads[0];
        for &right in &branch_heads[1..] {
            let j = ops.len();
            ops.push(OpKind::WindowJoin(self.sample_join()));
            edges.push((head, j));
            edges.push((right, j));
            head = j;
        }

        for _ in 0..per_slot[n_sources] {
            let f = ops.len();
            ops.push(OpKind::Filter(self.sample_filter()));
            edges.push((head, f));
            head = f;
        }

        if with_agg {
            let a = ops.len();
            ops.push(OpKind::WindowAggregate(self.sample_agg()));
            edges.push((head, a));
            head = a;
        }

        let sink = ops.len();
        ops.push(OpKind::Sink);
        edges.push((head, sink));
        Query::new(ops, edges)
    }

    /// Generates a linear query whose mid-chain consists of exactly
    /// `chain_len` consecutive filters — the *unseen query pattern* of
    /// Exp 5 (training data never contains chains longer than 1).
    pub fn filter_chain_query(&mut self, chain_len: usize) -> Query {
        assert!(chain_len >= 1);
        let mut ops: Vec<OpKind> = vec![OpKind::Source(self.sample_source(QueryTemplate::Linear))];
        let mut edges = Vec::new();
        let mut head = 0;
        for _ in 0..chain_len {
            let f = ops.len();
            ops.push(OpKind::Filter(self.sample_filter()));
            edges.push((head, f));
            head = f;
        }
        let sink = ops.len();
        ops.push(OpKind::Sink);
        edges.push((head, sink));
        Query::new(ops, edges)
    }

    /// Samples one host from the hardware ranges.
    pub fn host(&mut self) -> Host {
        Host {
            cpu: self.pick(&self.ranges.cpu.clone()),
            ram_mb: self.pick(&self.ranges.ram_mb.clone()),
            bandwidth_mbits: self.pick(&self.ranges.bandwidth_mbits.clone()),
            latency_ms: self.pick(&self.ranges.latency_ms.clone()),
        }
    }

    /// Samples a cluster of `n` random hosts.
    pub fn cluster(&mut self, n: usize) -> Cluster {
        Cluster::new((0..n).map(|_| self.host()).collect())
    }

    /// Samples a cluster sized for a query (one host per 1–2 operators,
    /// at least 2), mirroring the paper's clusters of small machine groups.
    pub fn cluster_for(&mut self, query: &Query) -> Cluster {
        let n = self.rng.gen_range(2..=query.len().max(3));
        self.cluster(n)
    }

    /// Constructs a random placement satisfying the rules of Fig. 5 by
    /// walking the query in topological order and choosing uniformly among
    /// the hosts that keep the placement valid. In rare corner cases (two
    /// join branches that between them have already visited every eligible
    /// host) a topological walk can dead-end; the construction then retries
    /// and, as a last resort, co-locates the whole query on the most
    /// capable host — which is always valid.
    pub fn placement(&mut self, query: &Query, cluster: &Cluster) -> Placement {
        for _ in 0..8 {
            if let Some(p) = crate::placement::sample_valid(query, cluster, &mut self.rng) {
                debug_assert!(p.is_valid(query, cluster));
                return p;
            }
        }
        crate::placement::colocate_on_strongest(query, cluster)
    }

    /// Convenience: one full benchmark item (query, cluster, placement).
    pub fn workload_item(&mut self) -> (Query, Cluster, Placement) {
        let query = self.query();
        let cluster = self.cluster_for(&query);
        let placement = self.placement(&query, &cluster);
        (query, cluster, placement)
    }

    /// Samples a wide cluster with the default scenario shape
    /// ([`WideClusterSpec::wide`]) and returns just the hosts.
    pub fn wide_cluster(&mut self, hosts: usize) -> Cluster {
        self.wide_scenario(&WideClusterSpec::wide(hosts)).cluster
    }

    /// Samples a wide-cluster scenario: `spec.hosts` hosts drawn from the
    /// training hardware ranges, stretched by per-host geo-latency tiers,
    /// optionally with asymmetric uplinks and a spot-host subset. This is
    /// the scale the paper's testbed could not reach — hundreds of hosts
    /// across sites — generated from the same transferable feature space
    /// the models were trained on.
    pub fn wide_scenario(&mut self, spec: &WideClusterSpec) -> WideScenario {
        assert!(spec.hosts > 0, "a scenario needs at least one host");
        assert!(spec.geo_tiers > 0, "at least one geo tier");
        let mut hosts = Vec::with_capacity(spec.hosts);
        let mut geo_tier = Vec::with_capacity(spec.hosts);
        let mut uplinks = Vec::with_capacity(spec.hosts);
        let mut spot_hosts = Vec::new();
        for id in 0..spec.hosts {
            let mut h = self.host();
            // Geo tier t multiplies egress latency: same-metro hosts keep
            // their sampled latency, farther tiers pay the WAN round trip.
            let tier = self.rng.gen_range(0..spec.geo_tiers);
            h.latency_ms *= WideScenario::GEO_LATENCY_FACTORS[tier.min(WideScenario::GEO_LATENCY_FACTORS.len() - 1)];
            geo_tier.push(tier);
            // Last-mile asymmetry: egress is a fraction of link speed.
            uplinks.push(if spec.asymmetric_uplinks {
                h.bandwidth_mbits * self.rng.gen_range(0.1..1.0)
            } else {
                h.bandwidth_mbits
            });
            if self.rng.gen_bool(spec.spot_fraction.clamp(0.0, 1.0)) {
                spot_hosts.push(id);
            }
            hosts.push(h);
        }
        let mut cluster = Cluster::new(hosts);
        if spec.asymmetric_uplinks {
            cluster = cluster.with_uplinks(uplinks);
        }
        WideScenario {
            cluster,
            geo_tier,
            spot_hosts,
        }
    }
}

/// Shape of a generated wide-cluster scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WideClusterSpec {
    /// Number of hosts (128 / 256 / 512 in the wide benches).
    pub hosts: usize,
    /// Number of geo-latency tiers hosts are spread across.
    pub geo_tiers: usize,
    /// Fraction of hosts flagged spot/preemptible.
    pub spot_fraction: f64,
    /// Whether egress bandwidth is an asymmetric fraction of link speed.
    pub asymmetric_uplinks: bool,
}

impl WideClusterSpec {
    /// The default wide scenario: 3 geo tiers, 15% spot hosts, asymmetric
    /// last-mile uplinks.
    pub fn wide(hosts: usize) -> Self {
        WideClusterSpec {
            hosts,
            geo_tiers: 3,
            spot_fraction: 0.15,
            asymmetric_uplinks: true,
        }
    }
}

/// A generated wide cluster plus its scenario annotations.
#[derive(Clone, Debug)]
pub struct WideScenario {
    /// The cluster (uplink overrides installed when the spec asks).
    pub cluster: Cluster,
    /// Geo-latency tier of each host (0 = same metro).
    pub geo_tier: Vec<usize>,
    /// Hosts flagged spot/preemptible. The DES drift engine already
    /// expresses preemption as `HostLoss` events; these flags name the
    /// hosts such events should target.
    pub spot_hosts: Vec<usize>,
}

impl WideScenario {
    /// Egress-latency multiplier per geo tier: metro, cross-region,
    /// cross-continent.
    pub const GEO_LATENCY_FACTORS: [f64; 3] = [1.0, 3.0, 8.0];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_queries_are_valid() {
        let mut g = WorkloadGenerator::new(1, FeatureRanges::training());
        for _ in 0..200 {
            let q = g.query();
            assert!(q.validate().is_ok());
        }
    }

    #[test]
    fn template_distribution_roughly_matches() {
        let mut g = WorkloadGenerator::new(2, FeatureRanges::training());
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            match g.sample_template() {
                QueryTemplate::Linear => counts[0] += 1,
                QueryTemplate::TwoWayJoin => counts[1] += 1,
                QueryTemplate::ThreeWayJoin => counts[2] += 1,
            }
        }
        assert!((counts[0] as f64 / 3000.0 - 0.35).abs() < 0.05);
        assert!((counts[1] as f64 / 3000.0 - 0.34).abs() < 0.05);
        assert!((counts[2] as f64 / 3000.0 - 0.31).abs() < 0.05);
    }

    #[test]
    fn filter_count_distribution() {
        let mut g = WorkloadGenerator::new(3, FeatureRanges::training());
        let mut ones = 0;
        for _ in 0..2000 {
            if g.sample_filter_count() == 1 {
                ones += 1;
            }
        }
        assert!((ones as f64 / 2000.0 - 0.35).abs() < 0.05);
    }

    #[test]
    fn three_way_join_has_three_sources_two_joins() {
        let mut g = WorkloadGenerator::new(4, FeatureRanges::training());
        let q = g.query_with(QueryTemplate::ThreeWayJoin, 2, true);
        let (s, _, a, j) = q.kind_counts();
        assert_eq!(s, 3);
        assert_eq!(j, 2);
        assert_eq!(a, 1);
    }

    #[test]
    fn filter_chain_has_exact_length() {
        let mut g = WorkloadGenerator::new(5, FeatureRanges::training());
        for len in 1..=4 {
            let q = g.filter_chain_query(len);
            let (_, f, _, _) = q.kind_counts();
            assert_eq!(f, len);
            assert!(q.validate().is_ok());
        }
    }

    #[test]
    fn generated_placements_are_valid() {
        let mut g = WorkloadGenerator::new(6, FeatureRanges::training());
        for _ in 0..200 {
            let (q, c, p) = g.workload_item();
            assert!(
                p.validate(&q, &c).is_ok(),
                "invalid placement: {:?}",
                p.validate(&q, &c)
            );
        }
    }

    #[test]
    fn hosts_come_from_ranges() {
        let ranges = FeatureRanges::training();
        let mut g = WorkloadGenerator::new(7, ranges.clone());
        for _ in 0..50 {
            let h = g.host();
            assert!(ranges.cpu.contains(&h.cpu));
            assert!(ranges.ram_mb.contains(&h.ram_mb));
            assert!(ranges.bandwidth_mbits.contains(&h.bandwidth_mbits));
            assert!(ranges.latency_ms.contains(&h.latency_ms));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = WorkloadGenerator::new(8, FeatureRanges::training()).query();
        let b = WorkloadGenerator::new(8, FeatureRanges::training()).query();
        assert_eq!(a, b);
    }

    #[test]
    fn wide_scenario_has_requested_shape() {
        let mut g = WorkloadGenerator::new(10, FeatureRanges::training());
        for n in [128usize, 256, 512] {
            let sc = g.wide_scenario(&WideClusterSpec::wide(n));
            assert_eq!(sc.cluster.len(), n);
            assert_eq!(sc.geo_tier.len(), n);
            assert!(sc.geo_tier.iter().all(|&t| t < 3));
            // All three tiers appear at these sizes.
            for tier in 0..3 {
                assert!(sc.geo_tier.contains(&tier), "{n} hosts missing tier {tier}");
            }
            // Spot fraction lands near the requested 15%.
            let frac = sc.spot_hosts.len() as f64 / n as f64;
            assert!((frac - 0.15).abs() < 0.1, "spot fraction {frac}");
            assert!(sc.spot_hosts.iter().all(|&h| h < n));
            // Uplinks are installed and never exceed link speed.
            for a in 0..n.min(8) {
                for b in 0..n.min(8) {
                    if a != b {
                        let bw = sc.cluster.link_bandwidth_mbits(a, b);
                        assert!(bw <= sc.cluster.host(a).bandwidth_mbits);
                        assert!(bw > 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn wide_scenario_is_deterministic_and_tiers_stretch_latency() {
        let spec = WideClusterSpec::wide(128);
        let a = WorkloadGenerator::new(11, FeatureRanges::training()).wide_scenario(&spec);
        let b = WorkloadGenerator::new(11, FeatureRanges::training()).wide_scenario(&spec);
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.geo_tier, b.geo_tier);
        assert_eq!(a.spot_hosts, b.spot_hosts);
        // Tier-2 hosts have higher mean latency than tier-0 hosts.
        let mean_lat = |tier: usize| {
            let hs: Vec<f64> = a
                .geo_tier
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t == tier)
                .map(|(i, _)| a.cluster.host(i).latency_ms)
                .collect();
            hs.iter().sum::<f64>() / hs.len() as f64
        };
        assert!(mean_lat(2) > mean_lat(0));
    }

    #[test]
    fn symmetric_wide_cluster_skips_uplinks() {
        let mut g = WorkloadGenerator::new(12, FeatureRanges::training());
        let sc = g.wide_scenario(&WideClusterSpec {
            hosts: 64,
            geo_tiers: 3,
            spot_fraction: 0.0,
            asymmetric_uplinks: false,
        });
        assert!(sc.spot_hosts.is_empty());
        for h in 0..8 {
            assert_eq!(sc.cluster.uplink_mbits(h), sc.cluster.host(h).bandwidth_mbits);
        }
    }

    #[test]
    fn sliding_windows_have_smaller_slide() {
        let mut g = WorkloadGenerator::new(9, FeatureRanges::training());
        for _ in 0..100 {
            let w = g.sample_window();
            match w.window_type {
                WindowType::Tumbling => assert_eq!(w.slide, w.size),
                WindowType::Sliding => assert!(w.slide < w.size && w.slide > 0.0),
            }
        }
    }
}
