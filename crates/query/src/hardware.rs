//! Heterogeneous hardware resources and clusters.
//!
//! The paper describes compute nodes by four *transferable* hardware
//! features (Table I): relative CPU resources (% of a reference core), RAM,
//! outgoing network latency and outgoing network bandwidth. Clusters in the
//! benchmark are built by virtualizing physical machines (cgroups/netem);
//! here a [`Cluster`] is simply a set of [`Host`] descriptions plus the
//! pairwise network model derived from the per-host egress parameters.

use serde::{Deserialize, Serialize};

/// Index of a host inside a [`Cluster`].
pub type HostId = usize;

/// One (virtualized) compute node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Host {
    /// Relative CPU resources in percent of one reference core
    /// (e.g. 200 = two reference cores).
    pub cpu: f64,
    /// Available RAM in megabytes.
    pub ram_mb: f64,
    /// Outgoing network bandwidth in Mbit/s.
    pub bandwidth_mbits: f64,
    /// Outgoing network latency in milliseconds.
    pub latency_ms: f64,
}

impl Host {
    /// A scalar capability score combining compute, memory and network in
    /// log space. Used to classify hosts into the three capability bins of
    /// the placement heuristic (Fig. 5 ②).
    pub fn capability_score(&self) -> f64 {
        // Geometric-mean style: latency counts negatively.
        (self.cpu.max(1.0).ln() + (self.ram_mb.max(1.0) / 1000.0).max(0.05).ln() + self.bandwidth_mbits.max(1.0).ln()
            - self.latency_ms.max(0.1).ln() / 2.0)
            / 3.0
    }
}

/// The capability class of a host, used by the heuristic enumeration rule
/// "increasing computing capability along the physical data flow".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CapabilityBin {
    /// Sensor/edge-class device.
    Edge,
    /// Workstation/fog-class device.
    Fog,
    /// Server/cloud-class device.
    Cloud,
}

impl CapabilityBin {
    /// Classifies a host into one of three bins. The thresholds were chosen
    /// so that the Table II training range splits roughly into thirds; the
    /// paper notes the bins "are intersected in their feature range to
    /// emulate realistic transitions", which holds here because the score
    /// mixes all four dimensions (a high-CPU host with slow network can
    /// land in the same bin as a low-CPU host with fast network).
    pub fn classify(host: &Host) -> CapabilityBin {
        // The Table II training grid spans scores of roughly 1.5 (weakest
        // edge device) to 6.5 (strongest cloud server); the cut points
        // split that span into thirds.
        let s = host.capability_score();
        if s < 3.2 {
            CapabilityBin::Edge
        } else if s < 4.8 {
            CapabilityBin::Fog
        } else {
            CapabilityBin::Cloud
        }
    }
}

/// A set of hosts available for placement, with a pairwise network model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    hosts: Vec<Host>,
    // Per-host egress overrides for asymmetric-uplink scenarios (consumer
    // links, LTE backhaul). `None` keeps the symmetric model where a
    // host's `bandwidth_mbits` bounds both directions. Skipped on the
    // wire: an in-memory scenario knob, not part of a host's transferable
    // feature description.
    #[serde(skip)]
    uplink_mbits: Option<Vec<f64>>,
}

impl Cluster {
    /// Creates a cluster.
    ///
    /// # Panics
    /// Panics if `hosts` is empty.
    pub fn new(hosts: Vec<Host>) -> Self {
        assert!(!hosts.is_empty(), "a cluster needs at least one host");
        Cluster {
            hosts,
            uplink_mbits: None,
        }
    }

    /// Overrides per-host egress bandwidth: host `i` *sends* at
    /// `uplink_mbits[i]` Mbit/s while still *receiving* at its
    /// `bandwidth_mbits`. Models the asymmetric last-mile links of wide
    /// edge fleets.
    ///
    /// # Panics
    /// Panics when the override length does not match the host count.
    pub fn with_uplinks(mut self, uplink_mbits: Vec<f64>) -> Self {
        assert_eq!(uplink_mbits.len(), self.hosts.len(), "one uplink override per host");
        self.uplink_mbits = Some(uplink_mbits);
        self
    }

    /// Egress bandwidth of a host in Mbit/s: the asymmetric override when
    /// set, the symmetric `bandwidth_mbits` otherwise.
    pub fn uplink_mbits(&self, id: HostId) -> f64 {
        match &self.uplink_mbits {
            Some(u) => u[id],
            None => self.hosts[id].bandwidth_mbits,
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when the cluster is empty (never for constructed clusters).
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Host by id.
    pub fn host(&self, id: HostId) -> &Host {
        &self.hosts[id]
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// One-way network latency between two hosts in milliseconds.
    /// Co-located operators communicate in-process at ~zero latency.
    pub fn link_latency_ms(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            0.0
        } else {
            // Egress latency of the sender dominates in edge-cloud setups
            // (the last mile); the receiver contributes half.
            self.hosts[a].latency_ms + 0.5 * self.hosts[b].latency_ms
        }
    }

    /// Achievable bandwidth between two hosts in Mbit/s: the bottleneck
    /// of the sender's egress (uplink when asymmetric) and the receiver's
    /// link speed.
    pub fn link_bandwidth_mbits(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            f64::INFINITY
        } else {
            self.uplink_mbits(a).min(self.hosts[b].bandwidth_mbits)
        }
    }

    /// Mean of each hardware feature over all hosts:
    /// `(cpu, ram, bandwidth, latency)`. Used to group prediction results
    /// by hardware range (Fig. 7).
    pub fn mean_features(&self) -> (f64, f64, f64, f64) {
        let n = self.hosts.len() as f64;
        let mut acc = (0.0, 0.0, 0.0, 0.0);
        for h in &self.hosts {
            acc.0 += h.cpu;
            acc.1 += h.ram_mb;
            acc.2 += h.bandwidth_mbits;
            acc.3 += h.latency_ms;
        }
        (acc.0 / n, acc.1 / n, acc.2 / n, acc.3 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> Host {
        Host {
            cpu: 50.0,
            ram_mb: 1000.0,
            bandwidth_mbits: 25.0,
            latency_ms: 160.0,
        }
    }

    fn cloud() -> Host {
        Host {
            cpu: 800.0,
            ram_mb: 32000.0,
            bandwidth_mbits: 10000.0,
            latency_ms: 1.0,
        }
    }

    #[test]
    fn capability_ordering() {
        assert!(cloud().capability_score() > edge().capability_score());
        assert_eq!(CapabilityBin::classify(&edge()), CapabilityBin::Edge);
        assert_eq!(CapabilityBin::classify(&cloud()), CapabilityBin::Cloud);
        assert!(CapabilityBin::Edge < CapabilityBin::Cloud);
    }

    #[test]
    fn mid_host_lands_in_fog() {
        let h = Host {
            cpu: 300.0,
            ram_mb: 8000.0,
            bandwidth_mbits: 400.0,
            latency_ms: 10.0,
        };
        assert_eq!(CapabilityBin::classify(&h), CapabilityBin::Fog);
    }

    #[test]
    fn colocated_links_are_free() {
        let c = Cluster::new(vec![edge(), cloud()]);
        assert_eq!(c.link_latency_ms(0, 0), 0.0);
        assert_eq!(c.link_bandwidth_mbits(1, 1), f64::INFINITY);
    }

    #[test]
    fn cross_links_bounded_by_weakest() {
        let c = Cluster::new(vec![edge(), cloud()]);
        assert_eq!(c.link_bandwidth_mbits(0, 1), 25.0);
        assert!(c.link_latency_ms(0, 1) > c.link_latency_ms(1, 0));
    }

    #[test]
    fn mean_features_average() {
        let c = Cluster::new(vec![edge(), cloud()]);
        let (cpu, ram, bw, lat) = c.mean_features();
        assert_eq!(cpu, 425.0);
        assert_eq!(ram, 16500.0);
        assert_eq!(bw, 5012.5);
        assert_eq!(lat, 80.5);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn empty_cluster_panics() {
        let _ = Cluster::new(vec![]);
    }

    #[test]
    fn asymmetric_uplinks_bound_egress_only() {
        let symmetric = Cluster::new(vec![edge(), cloud()]);
        let c = Cluster::new(vec![edge(), cloud()]).with_uplinks(vec![5.0, 10000.0]);
        // Sender 0's uplink, not its 25 Mbit/s link speed, bottlenecks.
        assert_eq!(c.link_bandwidth_mbits(0, 1), 5.0);
        // The reverse direction still bottlenecks on 0's receive side.
        assert_eq!(c.link_bandwidth_mbits(1, 0), 25.0);
        assert_eq!(c.link_bandwidth_mbits(0, 0), f64::INFINITY);
        // Without overrides the symmetric model is untouched.
        assert_eq!(symmetric.link_bandwidth_mbits(0, 1), 25.0);
        assert_eq!(symmetric.uplink_mbits(0), 25.0);
    }

    #[test]
    #[should_panic(expected = "one uplink override per host")]
    fn uplink_arity_mismatch_panics() {
        let _ = Cluster::new(vec![edge(), cloud()]).with_uplinks(vec![5.0]);
    }
}
