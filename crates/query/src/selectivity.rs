//! Selectivity estimation.
//!
//! The selectivities of Definitions 6–8 are *features* of the cost model
//! but are unknown before execution; the paper relies on sample-based
//! estimators \[31\]. We model the estimator explicitly as the true
//! selectivity perturbed by multiplicative log-normal noise, so experiments
//! can control how wrong the estimates are (and the default training data
//! carries realistic, imperfect selectivity features).

use crate::operators::{OpKind, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A noisy sample-based selectivity estimator.
pub struct SelectivityEstimator {
    rng: StdRng,
    /// Standard deviation of the log-normal relative error; 0 gives exact
    /// estimates.
    sigma: f64,
}

impl SelectivityEstimator {
    /// Creates an estimator with the given seed and relative error level.
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        SelectivityEstimator {
            rng: StdRng::seed_from_u64(seed),
            sigma,
        }
    }

    /// An exact (oracle) estimator.
    pub fn exact(seed: u64) -> Self {
        Self::new(seed, 0.0)
    }

    /// A realistic default: ~15% relative error.
    pub fn realistic(seed: u64) -> Self {
        Self::new(seed, 0.15)
    }

    /// Estimates one selectivity value, clamped to `[1e-6, 1]`.
    pub fn estimate(&mut self, true_selectivity: f64) -> f64 {
        if self.sigma == 0.0 {
            return true_selectivity.clamp(1e-6, 1.0);
        }
        // Box–Muller standard normal.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (true_selectivity * (self.sigma * z).exp()).clamp(1e-6, 1.0)
    }

    /// Estimated selectivity per operator of `query` (1.0 for operators
    /// without a selectivity: sources and sinks).
    pub fn estimate_query(&mut self, query: &Query) -> Vec<f64> {
        query
            .ops()
            .map(|(_, op)| match op {
                OpKind::Filter(f) => self.estimate(f.selectivity),
                OpKind::WindowJoin(j) => self.estimate(j.selectivity),
                OpKind::WindowAggregate(a) => self.estimate(a.selectivity),
                OpKind::Source(_) | OpKind::Sink => 1.0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimator_is_identity() {
        let mut e = SelectivityEstimator::exact(0);
        for s in [0.001, 0.5, 1.0] {
            assert_eq!(e.estimate(s), s);
        }
    }

    #[test]
    fn noisy_estimates_stay_in_unit_interval() {
        let mut e = SelectivityEstimator::new(1, 0.5);
        for _ in 0..1000 {
            let v = e.estimate(0.5);
            assert!((1e-6..=1.0).contains(&v));
        }
    }

    #[test]
    fn noise_is_unbiased_in_log_space() {
        let mut e = SelectivityEstimator::new(2, 0.15);
        let n = 5000;
        let mean_log: f64 = (0..n).map(|_| e.estimate(0.1).ln()).sum::<f64>() / n as f64;
        assert!((mean_log - (0.1f64).ln()).abs() < 0.02, "mean log {mean_log}");
    }

    #[test]
    fn estimate_query_covers_all_ops() {
        use crate::generator::WorkloadGenerator;
        use crate::ranges::FeatureRanges;
        let mut g = WorkloadGenerator::new(3, FeatureRanges::training());
        let q = g.query();
        let mut e = SelectivityEstimator::realistic(4);
        let sels = e.estimate_query(&q);
        assert_eq!(sels.len(), q.len());
        assert!(sels.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }
}
