//! Operator placement: the mapping from operators to hosts, plus the
//! validity rules the heuristic enumeration strategy enforces (Fig. 5).

use crate::hardware::{CapabilityBin, Cluster, HostId};
use crate::operators::{OpId, Query};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// An operator placement `ω_i → n_j`: one host per operator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    assignment: Vec<HostId>,
}

/// Why a placement violates the heuristic rules of Fig. 5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementViolation {
    /// The assignment length does not match the number of operators.
    WrongArity {
        /// Number of operators in the query.
        expected: usize,
        /// Number of assignments provided.
        got: usize,
    },
    /// An assignment references a host outside the cluster.
    UnknownHost {
        /// Offending operator.
        op: OpId,
        /// Host id that does not exist.
        host: HostId,
    },
    /// Data flows from a stronger to a weaker capability bin (rule ②).
    DecreasingCapability {
        /// Upstream operator.
        from: OpId,
        /// Downstream operator.
        to: OpId,
    },
    /// Data returns to a host it already passed through (rule ③).
    CyclicHostVisit {
        /// Operator whose input revisits a host.
        op: OpId,
        /// The revisited host.
        host: HostId,
    },
}

impl std::fmt::Display for PlacementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementViolation::WrongArity { expected, got } => {
                write!(f, "placement has {got} assignments for {expected} operators")
            }
            PlacementViolation::UnknownHost { op, host } => write!(f, "operator {op} placed on unknown host {host}"),
            PlacementViolation::DecreasingCapability { from, to } => {
                write!(f, "edge {from}->{to} flows to a weaker capability bin")
            }
            PlacementViolation::CyclicHostVisit { op, host } => {
                write!(f, "input of operator {op} returns to already-visited host {host}")
            }
        }
    }
}

impl Placement {
    /// Creates a placement from a per-operator host assignment.
    pub fn new(assignment: Vec<HostId>) -> Self {
        Placement { assignment }
    }

    /// Host assigned to an operator.
    pub fn host_of(&self, op: OpId) -> HostId {
        self.assignment[op]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[HostId] {
        &self.assignment
    }

    /// Operators co-located on `host`.
    pub fn ops_on_host(&self, host: HostId) -> Vec<OpId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h == host)
            .map(|(o, _)| o)
            .collect()
    }

    /// Distinct hosts used by this placement.
    pub fn hosts_used(&self) -> Vec<HostId> {
        let mut hs: Vec<HostId> = self.assignment.clone();
        hs.sort_unstable();
        hs.dedup();
        hs
    }

    /// Checks the placement against the enumeration rules of Fig. 5:
    /// ① co-location is allowed (nothing to check), ② capability bins must
    /// be non-decreasing along the data flow, ③ data must never return to a
    /// host it already passed through.
    pub fn validate(&self, query: &Query, cluster: &Cluster) -> Result<(), PlacementViolation> {
        if self.assignment.len() != query.len() {
            return Err(PlacementViolation::WrongArity {
                expected: query.len(),
                got: self.assignment.len(),
            });
        }
        for (op, &h) in self.assignment.iter().enumerate() {
            if h >= cluster.len() {
                return Err(PlacementViolation::UnknownHost { op, host: h });
            }
        }
        // Rule ②: non-decreasing capability bin along every edge.
        for &(a, b) in query.edges() {
            let ba = CapabilityBin::classify(cluster.host(self.assignment[a]));
            let bb = CapabilityBin::classify(cluster.host(self.assignment[b]));
            if bb < ba {
                return Err(PlacementViolation::DecreasingCapability { from: a, to: b });
            }
        }
        // Rule ③: no host revisits. visited(op) = {host(op)} ∪ visited of
        // all upstream ops; an edge a→b with host(b) ≠ host(a) must not
        // target a host in visited(a).
        let order = query.topo_order().expect("valid query");
        let mut visited: Vec<Vec<HostId>> = vec![Vec::new(); query.len()];
        for &op in &order {
            let mut v: Vec<HostId> = vec![self.assignment[op]];
            for u in query.upstream(op) {
                let hu = self.assignment[u];
                let hv = self.assignment[op];
                if hv != hu && visited[u].contains(&hv) {
                    return Err(PlacementViolation::CyclicHostVisit { op, host: hv });
                }
                v.extend(visited[u].iter().copied());
            }
            v.sort_unstable();
            v.dedup();
            visited[op] = v;
        }
        Ok(())
    }

    /// True when the placement satisfies all rules.
    pub fn is_valid(&self, query: &Query, cluster: &Cluster) -> bool {
        self.validate(query, cluster).is_ok()
    }
}

/// Attempts to construct one random placement satisfying the rules of
/// Fig. 5 by walking the query in topological order and choosing uniformly
/// among the hosts that keep the placement valid. Returns `None` when the
/// walk dead-ends (possible when two join branches exhaust the eligible
/// hosts between them).
pub fn sample_valid(query: &Query, cluster: &Cluster, rng: &mut StdRng) -> Option<Placement> {
    let order = query.topo_order().expect("valid query");
    let mut assignment: Vec<HostId> = vec![usize::MAX; query.len()];
    let mut visited: Vec<Vec<HostId>> = vec![Vec::new(); query.len()];
    let bins: Vec<CapabilityBin> = cluster.hosts().iter().map(CapabilityBin::classify).collect();
    for &op in &order {
        let ups = query.upstream(op);
        let candidates: Vec<HostId> = (0..cluster.len())
            .filter(|&h| {
                ups.iter().all(|&u| {
                    let ok_bin = bins[h] >= bins[assignment[u]];
                    let ok_cycle = h == assignment[u] || !visited[u].contains(&h);
                    ok_bin && ok_cycle
                })
            })
            .collect();
        let chosen = *candidates.choose(rng)?;
        assignment[op] = chosen;
        let mut v = vec![chosen];
        for &u in &ups {
            v.extend(visited[u].iter().copied());
        }
        v.sort_unstable();
        v.dedup();
        visited[op] = v;
    }
    Some(Placement::new(assignment))
}

/// The always-valid fallback placement: co-locate the whole query on the
/// most capable host.
pub fn colocate_on_strongest(query: &Query, cluster: &Cluster) -> Placement {
    let strongest = (0..cluster.len())
        .max_by(|&a, &b| {
            cluster
                .host(a)
                .capability_score()
                .partial_cmp(&cluster.host(b).capability_score())
                .expect("finite scores")
        })
        .expect("non-empty cluster");
    Placement::new(vec![strongest; query.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatypes::{DataType, TupleSchema};
    use crate::hardware::Host;
    use crate::operators::{FilterFunction, FilterSpec, OpKind, SourceSpec};

    fn chain_query(n_filters: usize) -> Query {
        let mut ops = vec![OpKind::Source(SourceSpec {
            event_rate: 100.0,
            schema: TupleSchema::new(vec![DataType::Int, DataType::Int, DataType::Int]),
        })];
        for _ in 0..n_filters {
            ops.push(OpKind::Filter(FilterSpec {
                function: FilterFunction::Less,
                literal_type: DataType::Int,
                selectivity: 0.5,
            }));
        }
        ops.push(OpKind::Sink);
        let edges = (0..ops.len() - 1).map(|i| (i, i + 1)).collect();
        Query::new(ops, edges)
    }

    fn edge_fog_cloud() -> Cluster {
        Cluster::new(vec![
            Host {
                cpu: 50.0,
                ram_mb: 1000.0,
                bandwidth_mbits: 25.0,
                latency_ms: 160.0,
            },
            Host {
                cpu: 300.0,
                ram_mb: 8000.0,
                bandwidth_mbits: 400.0,
                latency_ms: 10.0,
            },
            Host {
                cpu: 800.0,
                ram_mb: 32000.0,
                bandwidth_mbits: 10000.0,
                latency_ms: 1.0,
            },
        ])
    }

    #[test]
    fn monotone_placement_is_valid() {
        let q = chain_query(2);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 2, 2]);
        assert!(p.is_valid(&q, &c));
    }

    #[test]
    fn colocation_is_valid() {
        let q = chain_query(2);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![1, 1, 1, 1]);
        assert!(p.is_valid(&q, &c));
        assert_eq!(p.ops_on_host(1).len(), 4);
        assert_eq!(p.hosts_used(), vec![1]);
    }

    #[test]
    fn decreasing_capability_rejected() {
        let q = chain_query(1);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![2, 0, 0]);
        assert_eq!(
            p.validate(&q, &c),
            Err(PlacementViolation::DecreasingCapability { from: 0, to: 1 })
        );
    }

    #[test]
    fn host_revisit_rejected() {
        // source on fog(1), filter on fog(1)... need a revisit within same
        // bin to isolate rule ③: fog -> fog' -> fog. Use two fog hosts.
        let c = Cluster::new(vec![
            Host {
                cpu: 300.0,
                ram_mb: 8000.0,
                bandwidth_mbits: 400.0,
                latency_ms: 10.0,
            },
            Host {
                cpu: 300.0,
                ram_mb: 8000.0,
                bandwidth_mbits: 400.0,
                latency_ms: 10.0,
            },
        ]);
        let q = chain_query(2);
        let p = Placement::new(vec![0, 1, 0, 0]);
        assert_eq!(
            p.validate(&q, &c),
            Err(PlacementViolation::CyclicHostVisit { op: 2, host: 0 })
        );
    }

    #[test]
    fn wrong_arity_rejected() {
        let q = chain_query(1);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1]);
        assert!(matches!(p.validate(&q, &c), Err(PlacementViolation::WrongArity { .. })));
    }

    #[test]
    fn unknown_host_rejected() {
        let q = chain_query(1);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 9]);
        assert!(matches!(
            p.validate(&q, &c),
            Err(PlacementViolation::UnknownHost { op: 2, host: 9 })
        ));
    }
}
