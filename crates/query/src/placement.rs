//! Operator placement: the mapping from operators to hosts, plus the
//! validity rules the heuristic enumeration strategy enforces (Fig. 5).

use crate::hardware::{CapabilityBin, Cluster, HostId};
use crate::operators::{OpId, Query};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// An operator placement `ω_i → n_j`: one host per operator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    assignment: Vec<HostId>,
}

/// Why a placement violates the heuristic rules of Fig. 5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementViolation {
    /// The assignment length does not match the number of operators.
    WrongArity {
        /// Number of operators in the query.
        expected: usize,
        /// Number of assignments provided.
        got: usize,
    },
    /// An assignment references a host outside the cluster.
    UnknownHost {
        /// Offending operator.
        op: OpId,
        /// Host id that does not exist.
        host: HostId,
    },
    /// Data flows from a stronger to a weaker capability bin (rule ②).
    DecreasingCapability {
        /// Upstream operator.
        from: OpId,
        /// Downstream operator.
        to: OpId,
    },
    /// Data returns to a host it already passed through (rule ③).
    CyclicHostVisit {
        /// Operator whose input revisits a host.
        op: OpId,
        /// The revisited host.
        host: HostId,
    },
}

impl std::fmt::Display for PlacementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementViolation::WrongArity { expected, got } => {
                write!(f, "placement has {got} assignments for {expected} operators")
            }
            PlacementViolation::UnknownHost { op, host } => write!(f, "operator {op} placed on unknown host {host}"),
            PlacementViolation::DecreasingCapability { from, to } => {
                write!(f, "edge {from}->{to} flows to a weaker capability bin")
            }
            PlacementViolation::CyclicHostVisit { op, host } => {
                write!(f, "input of operator {op} returns to already-visited host {host}")
            }
        }
    }
}

impl Placement {
    /// Creates a placement from a per-operator host assignment.
    pub fn new(assignment: Vec<HostId>) -> Self {
        Placement { assignment }
    }

    /// Host assigned to an operator.
    pub fn host_of(&self, op: OpId) -> HostId {
        self.assignment[op]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[HostId] {
        &self.assignment
    }

    /// Operators co-located on `host`.
    pub fn ops_on_host(&self, host: HostId) -> Vec<OpId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h == host)
            .map(|(o, _)| o)
            .collect()
    }

    /// Distinct hosts used by this placement.
    pub fn hosts_used(&self) -> Vec<HostId> {
        let mut hs: Vec<HostId> = self.assignment.clone();
        hs.sort_unstable();
        hs.dedup();
        hs
    }

    /// Checks the placement against the enumeration rules of Fig. 5:
    /// ① co-location is allowed (nothing to check), ② capability bins must
    /// be non-decreasing along the data flow, ③ data must never return to a
    /// host it already passed through.
    pub fn validate(&self, query: &Query, cluster: &Cluster) -> Result<(), PlacementViolation> {
        if self.assignment.len() != query.len() {
            return Err(PlacementViolation::WrongArity {
                expected: query.len(),
                got: self.assignment.len(),
            });
        }
        for (op, &h) in self.assignment.iter().enumerate() {
            if h >= cluster.len() {
                return Err(PlacementViolation::UnknownHost { op, host: h });
            }
        }
        // Rule ②: non-decreasing capability bin along every edge.
        for &(a, b) in query.edges() {
            let ba = CapabilityBin::classify(cluster.host(self.assignment[a]));
            let bb = CapabilityBin::classify(cluster.host(self.assignment[b]));
            if bb < ba {
                return Err(PlacementViolation::DecreasingCapability { from: a, to: b });
            }
        }
        // Rule ③: no host revisits. visited(op) = {host(op)} ∪ visited of
        // all upstream ops; an edge a→b with host(b) ≠ host(a) must not
        // target a host in visited(a).
        let order = query.topo_order().expect("valid query");
        let mut visited: Vec<Vec<HostId>> = vec![Vec::new(); query.len()];
        for &op in &order {
            let mut v: Vec<HostId> = vec![self.assignment[op]];
            for u in query.upstream(op) {
                let hu = self.assignment[u];
                let hv = self.assignment[op];
                if hv != hu && visited[u].contains(&hv) {
                    return Err(PlacementViolation::CyclicHostVisit { op, host: hv });
                }
                v.extend(visited[u].iter().copied());
            }
            v.sort_unstable();
            v.dedup();
            visited[op] = v;
        }
        Ok(())
    }

    /// True when the placement satisfies all rules.
    pub fn is_valid(&self, query: &Query, cluster: &Cluster) -> bool {
        self.validate(query, cluster).is_ok()
    }
}

/// Attempts to construct one random placement satisfying the rules of
/// Fig. 5 by walking the query in topological order and choosing uniformly
/// among the hosts that keep the placement valid. Returns `None` when the
/// walk dead-ends (possible when two join branches exhaust the eligible
/// hosts between them).
pub fn sample_valid(query: &Query, cluster: &Cluster, rng: &mut StdRng) -> Option<Placement> {
    let order = query.topo_order().expect("valid query");
    let mut assignment: Vec<HostId> = vec![usize::MAX; query.len()];
    let mut visited: Vec<Vec<HostId>> = vec![Vec::new(); query.len()];
    let bins: Vec<CapabilityBin> = cluster.hosts().iter().map(CapabilityBin::classify).collect();
    for &op in &order {
        let ups = query.upstream(op);
        let candidates: Vec<HostId> = (0..cluster.len())
            .filter(|&h| {
                ups.iter().all(|&u| {
                    let ok_bin = bins[h] >= bins[assignment[u]];
                    let ok_cycle = h == assignment[u] || !visited[u].contains(&h);
                    ok_bin && ok_cycle
                })
            })
            .collect();
        let chosen = *candidates.choose(rng)?;
        assignment[op] = chosen;
        let mut v = vec![chosen];
        for &u in &ups {
            v.extend(visited[u].iter().copied());
        }
        v.sort_unstable();
        v.dedup();
        visited[op] = v;
    }
    Some(Placement::new(assignment))
}

/// Neighborhood moves over placements: the candidate generators of the
/// pluggable placement-search subsystem.
///
/// A search strategy explores the placement space by *editing* a known
/// valid placement — relocating one operator or swapping the hosts of two
/// operators — instead of sampling whole assignments from scratch. Both
/// edit kinds touch at most two operators, so the Fig. 5 validity rules
/// can be re-checked *incrementally*: rule ② (non-decreasing capability)
/// only on the edges incident to the touched operators, and rule ③ (no
/// host revisit) only over the touched operators' downstream cone, seeded
/// from precomputed visited-host bitmasks — everything outside the cone
/// kept its visited set, and every edge outside it was already valid.
pub mod neighborhood {
    use super::{CapabilityBin, Cluster, HostId, OpId, Placement, Query};

    /// A single placement edit.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Move {
        /// Move one operator to another host.
        Relocate {
            /// The operator to move.
            op: OpId,
            /// Its new host.
            to: HostId,
        },
        /// Exchange the hosts of two operators.
        Swap {
            /// First operator.
            a: OpId,
            /// Second operator.
            b: OpId,
        },
    }

    impl Move {
        /// The placement produced by applying this edit.
        pub fn apply(&self, placement: &Placement) -> Placement {
            let mut assignment = placement.assignment().to_vec();
            match *self {
                Move::Relocate { op, to } => assignment[op] = to,
                Move::Swap { a, b } => assignment.swap(a, b),
            }
            Placement::new(assignment)
        }
    }

    /// Per-placement rule ③ state: the set of hosts the data has passed
    /// through on any path ending at each operator, as one multi-word
    /// bitmask per operator (bit `h` = host `h` visited). The mask of
    /// operator `op` occupies `masks[op * words .. (op + 1) * words]`,
    /// with `words = ceil(cluster.len() / 64)` — so clusters of any width
    /// take the incremental validity path. Computed once per placement by
    /// [`Neighborhood::visit_state`] and reused for every candidate edit
    /// of that placement.
    #[derive(Clone, Debug)]
    pub struct VisitState {
        words: usize,
        masks: Vec<u64>,
    }

    /// Rule ③ working buffers, reused across all checks of a
    /// `Neighborhood` so a candidate check allocates nothing.
    struct MoveScratch {
        in_cone: Vec<bool>,
        new_mask: Vec<u64>,
    }

    /// Precomputed query/cluster structure shared by all neighbor checks:
    /// topological order, per-host capability bins and the dataflow
    /// adjacency. Build once per (query, cluster), reuse across every
    /// placement the search visits.
    pub struct Neighborhood<'a> {
        query: &'a Query,
        cluster: &'a Cluster,
        order: Vec<OpId>,
        bins: Vec<CapabilityBin>,
        ups: Vec<Vec<OpId>>,
        downs: Vec<Vec<OpId>>,
        words: usize,
        scratch: std::cell::RefCell<MoveScratch>,
    }

    impl<'a> Neighborhood<'a> {
        /// Precomputes the structure for one (query, cluster) pair.
        pub fn new(query: &'a Query, cluster: &'a Cluster) -> Self {
            let order = query.topo_order().expect("valid query");
            let bins = cluster.hosts().iter().map(CapabilityBin::classify).collect();
            let ups: Vec<Vec<OpId>> = (0..query.len()).map(|op| query.upstream(op)).collect();
            let downs: Vec<Vec<OpId>> = (0..query.len()).map(|op| query.downstream(op)).collect();
            let words = cluster.len().div_ceil(64).max(1);
            Neighborhood {
                query,
                cluster,
                order,
                bins,
                ups,
                downs,
                words,
                scratch: std::cell::RefCell::new(MoveScratch {
                    in_cone: vec![false; query.len()],
                    new_mask: vec![0u64; query.len() * words],
                }),
            }
        }

        /// Computes the visited-host bitmasks of a placement (rule ③
        /// state). `placement` is expected to be valid; the masks of an
        /// invalid placement are still well-defined but incremental
        /// checks against them only certify the *edited* parts.
        pub fn visit_state(&self, placement: &Placement) -> VisitState {
            let words = self.words;
            let mut masks = vec![0u64; self.query.len() * words];
            for &op in &self.order {
                let base = op * words;
                for &u in &self.ups[op] {
                    let ub = u * words;
                    for w in 0..words {
                        masks[base + w] |= masks[ub + w];
                    }
                }
                let h = placement.host_of(op);
                masks[base + h / 64] |= 1u64 << (h % 64);
            }
            VisitState { words, masks }
        }

        /// Checks whether applying `mv` to the (valid) placement `p`
        /// yields another valid placement, re-validating only what the
        /// edit can affect. `state` must be `self.visit_state(p)`.
        pub fn is_valid_move(&self, p: &Placement, state: &VisitState, mv: Move) -> bool {
            // Degenerate edits (no-ops, unknown hosts) are rejected up
            // front so the answer does not depend on which validation
            // path runs below.
            let touched: [(OpId, HostId); 2] = match mv {
                Move::Relocate { op, to } => {
                    if to >= self.cluster.len() || to == p.host_of(op) {
                        return false;
                    }
                    [(op, to), (op, to)]
                }
                Move::Swap { a, b } => {
                    if a == b || p.host_of(a) == p.host_of(b) {
                        return false;
                    }
                    [(a, p.host_of(b)), (b, p.host_of(a))]
                }
            };
            debug_assert_eq!(state.words, self.words, "visit state from another cluster width");
            let host = |op: OpId| -> HostId {
                if op == touched[0].0 {
                    touched[0].1
                } else if op == touched[1].0 {
                    touched[1].1
                } else {
                    p.host_of(op)
                }
            };

            // Rule ②: non-decreasing capability on every edge incident to
            // a touched operator (all other edges kept both endpoints).
            for &(op, _) in &touched {
                let b_op = self.bins[host(op)];
                for &u in &self.ups[op] {
                    if b_op < self.bins[host(u)] {
                        return false;
                    }
                }
                for &d in &self.downs[op] {
                    if self.bins[host(d)] < b_op {
                        return false;
                    }
                }
            }

            // Rule ③: recompute visited masks over the touched operators'
            // downstream cone only. Operators outside the cone keep their
            // masks, and every edge outside the cone was already valid.
            // A cone member's mask words are zeroed before any read (cone
            // members are visited in topo order), so no global reset is
            // needed.
            let words = self.words;
            let mut scratch = self.scratch.borrow_mut();
            let MoveScratch { in_cone, new_mask } = &mut *scratch;
            in_cone.fill(false);
            for &v in &self.order {
                let mut hit = v == touched[0].0 || v == touched[1].0;
                if !hit {
                    hit = self.ups[v].iter().any(|&u| in_cone[u]);
                }
                if !hit {
                    continue;
                }
                in_cone[v] = true;
                let hv = host(v);
                let (hw, hb) = (hv / 64, hv % 64);
                let vb = v * words;
                for w in 0..words {
                    new_mask[vb + w] = 0;
                }
                new_mask[vb + hw] = 1u64 << hb;
                for &u in &self.ups[v] {
                    let ub = u * words;
                    // An upstream inside the cone contributes its freshly
                    // recomputed mask; one outside keeps its cached mask.
                    let visited = if in_cone[u] {
                        (new_mask[ub + hw] >> hb) & 1 == 1
                    } else {
                        (state.masks[ub + hw] >> hb) & 1 == 1
                    };
                    if hv != host(u) && visited {
                        return false;
                    }
                    for w in 0..words {
                        let mu = if in_cone[u] {
                            new_mask[ub + w]
                        } else {
                            state.masks[ub + w]
                        };
                        new_mask[vb + w] |= mu;
                    }
                }
            }
            true
        }

        /// All valid single-operator relocations of `p`, in ascending
        /// (operator, host) order. `state` must be `self.visit_state(p)`.
        pub fn moves(&self, p: &Placement, state: &VisitState) -> Vec<Move> {
            let mut out = Vec::new();
            for op in 0..self.query.len() {
                for to in 0..self.cluster.len() {
                    let mv = Move::Relocate { op, to };
                    if to != p.host_of(op) && self.is_valid_move(p, state, mv) {
                        out.push(mv);
                    }
                }
            }
            out
        }

        /// All valid host swaps of operator pairs of `p` (pairs on the
        /// same host are no-ops and skipped), in ascending (a, b) order.
        /// `state` must be `self.visit_state(p)`.
        pub fn swaps(&self, p: &Placement, state: &VisitState) -> Vec<Move> {
            let n = self.query.len();
            let mut out = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    let mv = Move::Swap { a, b };
                    if p.host_of(a) != p.host_of(b) && self.is_valid_move(p, state, mv) {
                        out.push(mv);
                    }
                }
            }
            out
        }

        /// The full neighborhood: all valid relocations, then all valid
        /// swaps — a deterministic candidate order for search strategies.
        pub fn neighbors(&self, p: &Placement, state: &VisitState) -> Vec<Move> {
            let mut out = self.moves(p, state);
            out.extend(self.swaps(p, state));
            out
        }
    }
}

/// The always-valid fallback placement: co-locate the whole query on the
/// most capable host.
pub fn colocate_on_strongest(query: &Query, cluster: &Cluster) -> Placement {
    let strongest = (0..cluster.len())
        .max_by(|&a, &b| {
            cluster
                .host(a)
                .capability_score()
                .partial_cmp(&cluster.host(b).capability_score())
                .expect("finite scores")
        })
        .expect("non-empty cluster");
    Placement::new(vec![strongest; query.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatypes::{DataType, TupleSchema};
    use crate::hardware::Host;
    use crate::operators::{FilterFunction, FilterSpec, OpKind, SourceSpec};

    fn chain_query(n_filters: usize) -> Query {
        let mut ops = vec![OpKind::Source(SourceSpec {
            event_rate: 100.0,
            schema: TupleSchema::new(vec![DataType::Int, DataType::Int, DataType::Int]),
        })];
        for _ in 0..n_filters {
            ops.push(OpKind::Filter(FilterSpec {
                function: FilterFunction::Less,
                literal_type: DataType::Int,
                selectivity: 0.5,
            }));
        }
        ops.push(OpKind::Sink);
        let edges = (0..ops.len() - 1).map(|i| (i, i + 1)).collect();
        Query::new(ops, edges)
    }

    fn edge_fog_cloud() -> Cluster {
        Cluster::new(vec![
            Host {
                cpu: 50.0,
                ram_mb: 1000.0,
                bandwidth_mbits: 25.0,
                latency_ms: 160.0,
            },
            Host {
                cpu: 300.0,
                ram_mb: 8000.0,
                bandwidth_mbits: 400.0,
                latency_ms: 10.0,
            },
            Host {
                cpu: 800.0,
                ram_mb: 32000.0,
                bandwidth_mbits: 10000.0,
                latency_ms: 1.0,
            },
        ])
    }

    #[test]
    fn monotone_placement_is_valid() {
        let q = chain_query(2);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 2, 2]);
        assert!(p.is_valid(&q, &c));
    }

    #[test]
    fn colocation_is_valid() {
        let q = chain_query(2);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![1, 1, 1, 1]);
        assert!(p.is_valid(&q, &c));
        assert_eq!(p.ops_on_host(1).len(), 4);
        assert_eq!(p.hosts_used(), vec![1]);
    }

    #[test]
    fn decreasing_capability_rejected() {
        let q = chain_query(1);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![2, 0, 0]);
        assert_eq!(
            p.validate(&q, &c),
            Err(PlacementViolation::DecreasingCapability { from: 0, to: 1 })
        );
    }

    #[test]
    fn host_revisit_rejected() {
        // source on fog(1), filter on fog(1)... need a revisit within same
        // bin to isolate rule ③: fog -> fog' -> fog. Use two fog hosts.
        let c = Cluster::new(vec![
            Host {
                cpu: 300.0,
                ram_mb: 8000.0,
                bandwidth_mbits: 400.0,
                latency_ms: 10.0,
            },
            Host {
                cpu: 300.0,
                ram_mb: 8000.0,
                bandwidth_mbits: 400.0,
                latency_ms: 10.0,
            },
        ]);
        let q = chain_query(2);
        let p = Placement::new(vec![0, 1, 0, 0]);
        assert_eq!(
            p.validate(&q, &c),
            Err(PlacementViolation::CyclicHostVisit { op: 2, host: 0 })
        );
    }

    #[test]
    fn wrong_arity_rejected() {
        let q = chain_query(1);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1]);
        assert!(matches!(p.validate(&q, &c), Err(PlacementViolation::WrongArity { .. })));
    }

    #[test]
    fn neighborhood_incremental_matches_full_validation() {
        use super::neighborhood::{Move, Neighborhood};
        let q = chain_query(3);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 1, 2, 2]);
        assert!(p.is_valid(&q, &c));
        let nb = Neighborhood::new(&q, &c);
        let st = nb.visit_state(&p);
        for op in 0..q.len() {
            for to in 0..c.len() {
                if to == p.host_of(op) {
                    continue;
                }
                let mv = Move::Relocate { op, to };
                assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "relocate {op} -> {to}"
                );
            }
        }
        for a in 0..q.len() {
            for b in (a + 1)..q.len() {
                if p.host_of(a) == p.host_of(b) {
                    continue;
                }
                let mv = Move::Swap { a, b };
                assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "swap {a} <-> {b}"
                );
            }
        }
    }

    #[test]
    fn neighborhood_wide_cluster_matches_full_validation() {
        use super::neighborhood::{Move, Neighborhood};
        // 70 hosts (> 64): the visited sets span two bitmask words, so
        // this exercises the multi-word incremental path — which must
        // agree with full revalidation, including no-op rejection.
        let mut hosts = Vec::new();
        for i in 0..70 {
            // Mix of edge/fog/cloud-class hosts so both valid and
            // invalid relocations exist.
            let tier = i % 3;
            hosts.push(Host {
                cpu: [50.0, 300.0, 800.0][tier],
                ram_mb: [1000.0, 8000.0, 32000.0][tier],
                bandwidth_mbits: [25.0, 400.0, 10000.0][tier],
                latency_ms: [160.0, 10.0, 1.0][tier],
            });
        }
        let c = Cluster::new(hosts);
        let q = chain_query(2);
        let p = Placement::new(vec![0, 1, 2, 2]);
        assert!(p.is_valid(&q, &c));
        let nb = Neighborhood::new(&q, &c);
        let st = nb.visit_state(&p);
        for op in 0..q.len() {
            // No-op relocation is rejected on wide clusters too.
            let noop = Move::Relocate { op, to: p.host_of(op) };
            assert!(!nb.is_valid_move(&p, &st, noop));
            for to in 0..c.len() {
                if to == p.host_of(op) {
                    continue;
                }
                let mv = Move::Relocate { op, to };
                assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "wide cluster: relocate {op} -> {to}"
                );
            }
        }
        for a in 0..q.len() {
            assert!(!nb.is_valid_move(&p, &st, Move::Swap { a, b: a }), "self-swap");
            for b in (a + 1)..q.len() {
                let mv = Move::Swap { a, b };
                let want = p.host_of(a) != p.host_of(b) && mv.apply(&p).is_valid(&q, &c);
                assert_eq!(nb.is_valid_move(&p, &st, mv), want, "wide cluster: swap {a} <-> {b}");
            }
        }
        // Generators work on wide clusters and emit valid neighbors.
        let neighbors = nb.neighbors(&p, &st);
        assert!(!neighbors.is_empty());
        for mv in neighbors {
            assert!(mv.apply(&p).is_valid(&q, &c));
        }
    }

    #[test]
    fn neighborhood_generators_emit_only_valid_placements() {
        use super::neighborhood::Neighborhood;
        let q = chain_query(2);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 2, 2]);
        let nb = Neighborhood::new(&q, &c);
        let st = nb.visit_state(&p);
        let neighbors = nb.neighbors(&p, &st);
        assert!(!neighbors.is_empty());
        for mv in neighbors {
            let np = mv.apply(&p);
            assert!(np.is_valid(&q, &c), "{mv:?} produced invalid {:?}", np.assignment());
            assert_ne!(np.assignment(), p.assignment(), "{mv:?} is a no-op");
        }
    }

    #[test]
    fn unknown_host_rejected() {
        let q = chain_query(1);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 9]);
        assert!(matches!(
            p.validate(&q, &c),
            Err(PlacementViolation::UnknownHost { op: 2, host: 9 })
        ));
    }
}
