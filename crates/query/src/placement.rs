//! Operator placement: the mapping from operators to hosts, plus the
//! validity rules the heuristic enumeration strategy enforces (Fig. 5).

use crate::hardware::{CapabilityBin, Cluster, HostId};
use crate::operators::{OpId, Query};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// An operator placement `ω_i → n_j`: one host per operator.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    assignment: Vec<HostId>,
}

/// Why a placement violates the heuristic rules of Fig. 5.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlacementViolation {
    /// The assignment length does not match the number of operators.
    WrongArity {
        /// Number of operators in the query.
        expected: usize,
        /// Number of assignments provided.
        got: usize,
    },
    /// An assignment references a host outside the cluster.
    UnknownHost {
        /// Offending operator.
        op: OpId,
        /// Host id that does not exist.
        host: HostId,
    },
    /// Data flows from a stronger to a weaker capability bin (rule ②).
    DecreasingCapability {
        /// Upstream operator.
        from: OpId,
        /// Downstream operator.
        to: OpId,
    },
    /// Data returns to a host it already passed through (rule ③).
    CyclicHostVisit {
        /// Operator whose input revisits a host.
        op: OpId,
        /// The revisited host.
        host: HostId,
    },
}

impl std::fmt::Display for PlacementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementViolation::WrongArity { expected, got } => {
                write!(f, "placement has {got} assignments for {expected} operators")
            }
            PlacementViolation::UnknownHost { op, host } => write!(f, "operator {op} placed on unknown host {host}"),
            PlacementViolation::DecreasingCapability { from, to } => {
                write!(f, "edge {from}->{to} flows to a weaker capability bin")
            }
            PlacementViolation::CyclicHostVisit { op, host } => {
                write!(f, "input of operator {op} returns to already-visited host {host}")
            }
        }
    }
}

impl Placement {
    /// Creates a placement from a per-operator host assignment.
    pub fn new(assignment: Vec<HostId>) -> Self {
        Placement { assignment }
    }

    /// Host assigned to an operator.
    pub fn host_of(&self, op: OpId) -> HostId {
        self.assignment[op]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[HostId] {
        &self.assignment
    }

    /// Operators co-located on `host`.
    pub fn ops_on_host(&self, host: HostId) -> Vec<OpId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h == host)
            .map(|(o, _)| o)
            .collect()
    }

    /// Distinct hosts used by this placement.
    pub fn hosts_used(&self) -> Vec<HostId> {
        let mut hs: Vec<HostId> = self.assignment.clone();
        hs.sort_unstable();
        hs.dedup();
        hs
    }

    /// Checks the placement against the enumeration rules of Fig. 5:
    /// ① co-location is allowed (nothing to check), ② capability bins must
    /// be non-decreasing along the data flow, ③ data must never return to a
    /// host it already passed through.
    pub fn validate(&self, query: &Query, cluster: &Cluster) -> Result<(), PlacementViolation> {
        if self.assignment.len() != query.len() {
            return Err(PlacementViolation::WrongArity {
                expected: query.len(),
                got: self.assignment.len(),
            });
        }
        for (op, &h) in self.assignment.iter().enumerate() {
            if h >= cluster.len() {
                return Err(PlacementViolation::UnknownHost { op, host: h });
            }
        }
        // Rule ②: non-decreasing capability bin along every edge.
        for &(a, b) in query.edges() {
            let ba = CapabilityBin::classify(cluster.host(self.assignment[a]));
            let bb = CapabilityBin::classify(cluster.host(self.assignment[b]));
            if bb < ba {
                return Err(PlacementViolation::DecreasingCapability { from: a, to: b });
            }
        }
        // Rule ③: no host revisits. visited(op) = {host(op)} ∪ visited of
        // all upstream ops; an edge a→b with host(b) ≠ host(a) must not
        // target a host in visited(a).
        let order = query.topo_order().expect("valid query");
        let mut visited: Vec<Vec<HostId>> = vec![Vec::new(); query.len()];
        for &op in &order {
            let mut v: Vec<HostId> = vec![self.assignment[op]];
            for u in query.upstream(op) {
                let hu = self.assignment[u];
                let hv = self.assignment[op];
                if hv != hu && visited[u].contains(&hv) {
                    return Err(PlacementViolation::CyclicHostVisit { op, host: hv });
                }
                v.extend(visited[u].iter().copied());
            }
            v.sort_unstable();
            v.dedup();
            visited[op] = v;
        }
        Ok(())
    }

    /// True when the placement satisfies all rules.
    pub fn is_valid(&self, query: &Query, cluster: &Cluster) -> bool {
        self.validate(query, cluster).is_ok()
    }
}

/// Attempts to construct one random placement satisfying the rules of
/// Fig. 5 by walking the query in topological order and choosing uniformly
/// among the hosts that keep the placement valid. Returns `None` when the
/// walk dead-ends (possible when two join branches exhaust the eligible
/// hosts between them).
pub fn sample_valid(query: &Query, cluster: &Cluster, rng: &mut StdRng) -> Option<Placement> {
    let order = query.topo_order().expect("valid query");
    let mut assignment: Vec<HostId> = vec![usize::MAX; query.len()];
    let mut visited: Vec<Vec<HostId>> = vec![Vec::new(); query.len()];
    let bins: Vec<CapabilityBin> = cluster.hosts().iter().map(CapabilityBin::classify).collect();
    for &op in &order {
        let ups = query.upstream(op);
        let candidates: Vec<HostId> = (0..cluster.len())
            .filter(|&h| {
                ups.iter().all(|&u| {
                    let ok_bin = bins[h] >= bins[assignment[u]];
                    let ok_cycle = h == assignment[u] || !visited[u].contains(&h);
                    ok_bin && ok_cycle
                })
            })
            .collect();
        let chosen = *candidates.choose(rng)?;
        assignment[op] = chosen;
        let mut v = vec![chosen];
        for &u in &ups {
            v.extend(visited[u].iter().copied());
        }
        v.sort_unstable();
        v.dedup();
        visited[op] = v;
    }
    Some(Placement::new(assignment))
}

/// Neighborhood moves over placements: the candidate generators of the
/// pluggable placement-search subsystem.
///
/// A search strategy explores the placement space by *editing* a known
/// valid placement — relocating one operator or swapping the hosts of two
/// operators — instead of sampling whole assignments from scratch. Both
/// edit kinds touch at most two operators, so the Fig. 5 validity rules
/// can be re-checked *incrementally*: rule ② (non-decreasing capability)
/// only on the edges incident to the touched operators, and rule ③ (no
/// host revisit) only over the touched operators' downstream cone, seeded
/// from precomputed visited-host bitmasks — everything outside the cone
/// kept its visited set, and every edge outside it was already valid.
pub mod neighborhood {
    use super::{CapabilityBin, Cluster, HostId, OpId, Placement, Query};

    /// A single placement edit.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Move {
        /// Move one operator to another host.
        Relocate {
            /// The operator to move.
            op: OpId,
            /// Its new host.
            to: HostId,
        },
        /// Exchange the hosts of two operators.
        Swap {
            /// First operator.
            a: OpId,
            /// Second operator.
            b: OpId,
        },
    }

    impl Move {
        /// The placement produced by applying this edit.
        pub fn apply(&self, placement: &Placement) -> Placement {
            let mut assignment = placement.assignment().to_vec();
            self.edit(&mut assignment);
            Placement::new(assignment)
        }

        /// Writes the edited assignment into `out` (cleared first) without
        /// constructing a `Placement` — the allocation-free form search
        /// strategies use to test a candidate against their dedup set
        /// before deciding to materialize it.
        pub fn apply_into(&self, placement: &Placement, out: &mut Vec<HostId>) {
            out.clear();
            out.extend_from_slice(placement.assignment());
            self.edit(out);
        }

        fn edit(&self, assignment: &mut [HostId]) {
            match *self {
                Move::Relocate { op, to } => assignment[op] = to,
                Move::Swap { a, b } => assignment.swap(a, b),
            }
        }
    }

    /// Counters of one neighborhood enumeration: `generated` candidate
    /// edits passed the incremental Fig. 5 checks and were emitted,
    /// `rejected` failed them. Degenerate edits that are skipped without a
    /// check (relocating to the current host, swapping co-located
    /// operators) count toward neither.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct MoveCounts {
        /// Valid edits emitted.
        pub generated: u64,
        /// Edits rejected by the incremental validity check.
        pub rejected: u64,
    }

    impl MoveCounts {
        /// Total incremental validity checks performed.
        pub fn checked(&self) -> u64 {
            self.generated + self.rejected
        }

        /// Accumulates another enumeration's counters into this one.
        pub fn absorb(&mut self, other: MoveCounts) {
            self.generated += other.generated;
            self.rejected += other.rejected;
        }

        fn note(&mut self, valid: bool) {
            if valid {
                self.generated += 1;
            } else {
                self.rejected += 1;
            }
        }
    }

    /// Per-placement rule ③ state: the set of hosts the data has passed
    /// through on any path ending at each operator, as one multi-word
    /// bitmask per operator (bit `h` = host `h` visited). The mask of
    /// operator `op` occupies `masks[op * words .. (op + 1) * words]`,
    /// with `words = ceil(cluster.len() / 64)` — so clusters of any width
    /// take the incremental validity path. Computed once per placement by
    /// [`Neighborhood::visit_state`] and reused for every candidate edit
    /// of that placement.
    #[derive(Clone, Debug)]
    pub struct VisitState {
        words: usize,
        masks: Vec<u64>,
    }

    impl VisitState {
        /// An empty state to be filled by [`Neighborhood::visit_state_into`].
        /// Search strategies hold one of these across rounds so mask
        /// recomputation reuses the same buffer instead of allocating.
        pub fn empty() -> VisitState {
            VisitState {
                words: 0,
                masks: Vec::new(),
            }
        }
    }

    impl Default for VisitState {
        fn default() -> Self {
            VisitState::empty()
        }
    }

    /// Rule ③ working buffers. A `Neighborhood` keeps one behind a lock
    /// for the convenience APIs; parallel enumeration hands each worker
    /// its own so cone recomputation never allocates in steady state and
    /// never contends.
    pub struct MoveScratch {
        in_cone: Vec<bool>,
        new_mask: Vec<u64>,
    }

    impl MoveScratch {
        /// Scratch sized for a query of `n_ops` operators on a cluster
        /// whose visit masks span `words` words per operator. A scratch
        /// sized for larger bounds is accepted by every check, so one
        /// max-sized scratch can serve several queries.
        pub fn new(n_ops: usize, words: usize) -> MoveScratch {
            MoveScratch {
                in_cone: vec![false; n_ops],
                new_mask: vec![0u64; n_ops * words],
            }
        }

        fn ensure(&mut self, n_ops: usize, words: usize) {
            if self.in_cone.len() < n_ops {
                self.in_cone.resize(n_ops, false);
            }
            if self.new_mask.len() < n_ops * words {
                self.new_mask.resize(n_ops * words, 0);
            }
        }
    }

    /// Precomputed query/cluster structure shared by all neighbor checks:
    /// topological order, per-host capability bins and the dataflow
    /// adjacency. Build once per (query, cluster), reuse across every
    /// placement the search visits.
    pub struct Neighborhood<'a> {
        query: &'a Query,
        cluster: &'a Cluster,
        order: Vec<OpId>,
        bins: Vec<CapabilityBin>,
        ups: Vec<Vec<OpId>>,
        downs: Vec<Vec<OpId>>,
        words: usize,
        // A `Mutex`, not a `RefCell`, so the neighborhood is `Sync` and can
        // be shared across enumeration workers. Serial entry points lock it
        // once per enumeration, never per check.
        scratch: std::sync::Mutex<MoveScratch>,
    }

    impl<'a> Neighborhood<'a> {
        /// Precomputes the structure for one (query, cluster) pair.
        pub fn new(query: &'a Query, cluster: &'a Cluster) -> Self {
            let order = query.topo_order().expect("valid query");
            let bins = cluster.hosts().iter().map(CapabilityBin::classify).collect();
            let ups: Vec<Vec<OpId>> = (0..query.len()).map(|op| query.upstream(op)).collect();
            let downs: Vec<Vec<OpId>> = (0..query.len()).map(|op| query.downstream(op)).collect();
            let words = cluster.len().div_ceil(64).max(1);
            Neighborhood {
                query,
                cluster,
                order,
                bins,
                ups,
                downs,
                words,
                scratch: std::sync::Mutex::new(MoveScratch::new(query.len(), words)),
            }
        }

        /// Bitmask words per operator: `ceil(cluster.len() / 64)`.
        pub fn mask_words(&self) -> usize {
            self.words
        }

        /// A fresh scratch correctly sized for this neighborhood's checks.
        pub fn make_scratch(&self) -> MoveScratch {
            MoveScratch::new(self.query.len(), self.words)
        }

        /// Computes the visited-host bitmasks of a placement (rule ③
        /// state). `placement` is expected to be valid; the masks of an
        /// invalid placement are still well-defined but incremental
        /// checks against them only certify the *edited* parts.
        pub fn visit_state(&self, placement: &Placement) -> VisitState {
            let mut state = VisitState::empty();
            self.visit_state_into(placement, &mut state);
            state
        }

        /// Recomputes the visited-host bitmasks into an existing state,
        /// reusing its mask buffer: once the buffer has grown to this
        /// neighborhood's size, recomputation allocates nothing.
        pub fn visit_state_into(&self, placement: &Placement, state: &mut VisitState) {
            let words = self.words;
            state.words = words;
            let masks = &mut state.masks;
            masks.clear();
            masks.resize(self.query.len() * words, 0);
            for &op in &self.order {
                let base = op * words;
                for &u in &self.ups[op] {
                    let ub = u * words;
                    for w in 0..words {
                        masks[base + w] |= masks[ub + w];
                    }
                }
                let h = placement.host_of(op);
                masks[base + h / 64] |= 1u64 << (h % 64);
            }
        }

        /// Checks whether applying `mv` to the (valid) placement `p`
        /// yields another valid placement, re-validating only what the
        /// edit can affect. `state` must be `self.visit_state(p)`.
        pub fn is_valid_move(&self, p: &Placement, state: &VisitState, mv: Move) -> bool {
            let mut scratch = self.scratch.lock().expect("neighborhood scratch lock");
            self.is_valid_move_with(p, state, mv, &mut scratch)
        }

        /// [`Neighborhood::is_valid_move`] with caller-provided working
        /// buffers — the re-entrant form parallel enumeration uses, one
        /// scratch per worker, without touching the shared lock.
        pub fn is_valid_move_with(
            &self,
            p: &Placement,
            state: &VisitState,
            mv: Move,
            scratch: &mut MoveScratch,
        ) -> bool {
            // Degenerate edits (no-ops, unknown hosts) are rejected up
            // front so the answer does not depend on which validation
            // path runs below.
            let touched: [(OpId, HostId); 2] = match mv {
                Move::Relocate { op, to } => {
                    if to >= self.cluster.len() || to == p.host_of(op) {
                        return false;
                    }
                    [(op, to), (op, to)]
                }
                Move::Swap { a, b } => {
                    if a == b || p.host_of(a) == p.host_of(b) {
                        return false;
                    }
                    [(a, p.host_of(b)), (b, p.host_of(a))]
                }
            };
            debug_assert_eq!(state.words, self.words, "visit state from another cluster width");
            let host = |op: OpId| -> HostId {
                if op == touched[0].0 {
                    touched[0].1
                } else if op == touched[1].0 {
                    touched[1].1
                } else {
                    p.host_of(op)
                }
            };

            // Rule ②: non-decreasing capability on every edge incident to
            // a touched operator (all other edges kept both endpoints).
            for &(op, _) in &touched {
                let b_op = self.bins[host(op)];
                for &u in &self.ups[op] {
                    if b_op < self.bins[host(u)] {
                        return false;
                    }
                }
                for &d in &self.downs[op] {
                    if self.bins[host(d)] < b_op {
                        return false;
                    }
                }
            }

            // Rule ③: recompute visited masks over the touched operators'
            // downstream cone only. Operators outside the cone keep their
            // masks, and every edge outside the cone was already valid.
            // A cone member's mask words are zeroed before any read (cone
            // members are visited in topo order), so no global reset is
            // needed.
            let words = self.words;
            scratch.ensure(self.query.len(), words);
            let MoveScratch { in_cone, new_mask } = scratch;
            in_cone[..self.query.len()].fill(false);
            for &v in &self.order {
                let mut hit = v == touched[0].0 || v == touched[1].0;
                if !hit {
                    hit = self.ups[v].iter().any(|&u| in_cone[u]);
                }
                if !hit {
                    continue;
                }
                in_cone[v] = true;
                let hv = host(v);
                let (hw, hb) = (hv / 64, hv % 64);
                let vb = v * words;
                for w in 0..words {
                    new_mask[vb + w] = 0;
                }
                new_mask[vb + hw] = 1u64 << hb;
                for &u in &self.ups[v] {
                    let ub = u * words;
                    // An upstream inside the cone contributes its freshly
                    // recomputed mask; one outside keeps its cached mask.
                    let visited = if in_cone[u] {
                        (new_mask[ub + hw] >> hb) & 1 == 1
                    } else {
                        (state.masks[ub + hw] >> hb) & 1 == 1
                    };
                    if hv != host(u) && visited {
                        return false;
                    }
                    for w in 0..words {
                        let mu = if in_cone[u] {
                            new_mask[ub + w]
                        } else {
                            state.masks[ub + w]
                        };
                        new_mask[vb + w] |= mu;
                    }
                }
            }
            true
        }

        /// One relocation unit: every candidate host for operator `op`,
        /// in ascending host order, streamed through `f`.
        fn relocations_of(
            &self,
            op: OpId,
            p: &Placement,
            state: &VisitState,
            scratch: &mut MoveScratch,
            f: &mut impl FnMut(Move),
        ) -> MoveCounts {
            let mut counts = MoveCounts::default();
            let cur = p.host_of(op);
            for to in 0..self.cluster.len() {
                if to == cur {
                    continue;
                }
                let mv = Move::Relocate { op, to };
                let ok = self.is_valid_move_with(p, state, mv, scratch);
                counts.note(ok);
                if ok {
                    f(mv);
                }
            }
            counts
        }

        /// One swap unit: every swap with first operand `a`, in ascending
        /// second-operand order, streamed through `f`.
        fn swaps_of(
            &self,
            a: OpId,
            p: &Placement,
            state: &VisitState,
            scratch: &mut MoveScratch,
            f: &mut impl FnMut(Move),
        ) -> MoveCounts {
            let mut counts = MoveCounts::default();
            for b in (a + 1)..self.query.len() {
                if p.host_of(a) == p.host_of(b) {
                    continue;
                }
                let mv = Move::Swap { a, b };
                let ok = self.is_valid_move_with(p, state, mv, scratch);
                counts.note(ok);
                if ok {
                    f(mv);
                }
            }
            counts
        }

        /// Streams all valid single-operator relocations of `p` through
        /// `f`, in ascending (operator, host) order, without materializing
        /// a move list. `state` must be `self.visit_state(p)`.
        pub fn for_each_move(&self, p: &Placement, state: &VisitState, mut f: impl FnMut(Move)) -> MoveCounts {
            let mut scratch = self.scratch.lock().expect("neighborhood scratch lock");
            let mut counts = MoveCounts::default();
            for op in 0..self.query.len() {
                counts.absorb(self.relocations_of(op, p, state, &mut scratch, &mut f));
            }
            counts
        }

        /// Streams all valid host swaps of `p` through `f` (pairs on the
        /// same host are no-ops and skipped), in ascending (a, b) order.
        /// `state` must be `self.visit_state(p)`.
        pub fn for_each_swap(&self, p: &Placement, state: &VisitState, mut f: impl FnMut(Move)) -> MoveCounts {
            let mut scratch = self.scratch.lock().expect("neighborhood scratch lock");
            let mut counts = MoveCounts::default();
            for a in 0..self.query.len() {
                counts.absorb(self.swaps_of(a, p, state, &mut scratch, &mut f));
            }
            counts
        }

        /// Streams the full neighborhood — all valid relocations, then
        /// all valid swaps — through `f` in the same deterministic order
        /// as [`Neighborhood::neighbors`].
        pub fn for_each_neighbor(&self, p: &Placement, state: &VisitState, mut f: impl FnMut(Move)) -> MoveCounts {
            let mut scratch = self.scratch.lock().expect("neighborhood scratch lock");
            let mut counts = MoveCounts::default();
            for op in 0..self.query.len() {
                counts.absorb(self.relocations_of(op, p, state, &mut scratch, &mut f));
            }
            for a in 0..self.query.len() {
                counts.absorb(self.swaps_of(a, p, state, &mut scratch, &mut f));
            }
            counts
        }

        /// Fills `out` (cleared first) with the full neighborhood. Once
        /// `out` has grown to the neighborhood's steady-state size, an
        /// enumeration allocates nothing.
        pub fn neighbors_into(&self, p: &Placement, state: &VisitState, out: &mut Vec<Move>) -> MoveCounts {
            out.clear();
            self.for_each_neighbor(p, state, |mv| out.push(mv))
        }

        /// The full neighborhood computed by chunking the candidate space
        /// across rayon workers: one unit per operator for relocations,
        /// one per first operand for swaps, each worker with its own
        /// [`MoveScratch`]. Unit results are concatenated in unit order,
        /// so the output is bitwise identical to
        /// [`Neighborhood::neighbors_into`] for any worker count.
        pub fn neighbors_into_par(&self, p: &Placement, state: &VisitState, out: &mut Vec<Move>) -> MoveCounts {
            use rayon::prelude::*;
            let n = self.query.len();
            // Unit u < n: relocations of operator u; unit n + a: swaps
            // whose first operand is a (the last one is empty — kept so
            // unit indices stay trivially in serial order).
            let unit_results: Vec<(Vec<Move>, MoveCounts)> = (0..2 * n)
                .into_par_iter()
                .map(|u| {
                    let mut scratch = self.make_scratch();
                    let mut unit_out = Vec::new();
                    let counts = if u < n {
                        self.relocations_of(u, p, state, &mut scratch, &mut |mv| unit_out.push(mv))
                    } else {
                        self.swaps_of(u - n, p, state, &mut scratch, &mut |mv| unit_out.push(mv))
                    };
                    (unit_out, counts)
                })
                .collect();
            out.clear();
            let mut counts = MoveCounts::default();
            for (unit_out, unit_counts) in unit_results {
                out.extend_from_slice(&unit_out);
                counts.absorb(unit_counts);
            }
            counts
        }

        /// All valid single-operator relocations of `p`, in ascending
        /// (operator, host) order. `state` must be `self.visit_state(p)`.
        pub fn moves(&self, p: &Placement, state: &VisitState) -> Vec<Move> {
            let mut out = Vec::new();
            self.for_each_move(p, state, |mv| out.push(mv));
            out
        }

        /// All valid host swaps of operator pairs of `p` (pairs on the
        /// same host are no-ops and skipped), in ascending (a, b) order.
        /// `state` must be `self.visit_state(p)`.
        pub fn swaps(&self, p: &Placement, state: &VisitState) -> Vec<Move> {
            let mut out = Vec::new();
            self.for_each_swap(p, state, |mv| out.push(mv));
            out
        }

        /// The full neighborhood: all valid relocations, then all valid
        /// swaps — a deterministic candidate order for search strategies.
        pub fn neighbors(&self, p: &Placement, state: &VisitState) -> Vec<Move> {
            let mut out = Vec::new();
            self.neighbors_into(p, state, &mut out);
            out
        }
    }
}

/// The always-valid fallback placement: co-locate the whole query on the
/// most capable host.
pub fn colocate_on_strongest(query: &Query, cluster: &Cluster) -> Placement {
    let strongest = (0..cluster.len())
        .max_by(|&a, &b| {
            cluster
                .host(a)
                .capability_score()
                .partial_cmp(&cluster.host(b).capability_score())
                .expect("finite scores")
        })
        .expect("non-empty cluster");
    Placement::new(vec![strongest; query.len()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatypes::{DataType, TupleSchema};
    use crate::hardware::Host;
    use crate::operators::{FilterFunction, FilterSpec, OpKind, SourceSpec};

    fn chain_query(n_filters: usize) -> Query {
        let mut ops = vec![OpKind::Source(SourceSpec {
            event_rate: 100.0,
            schema: TupleSchema::new(vec![DataType::Int, DataType::Int, DataType::Int]),
        })];
        for _ in 0..n_filters {
            ops.push(OpKind::Filter(FilterSpec {
                function: FilterFunction::Less,
                literal_type: DataType::Int,
                selectivity: 0.5,
            }));
        }
        ops.push(OpKind::Sink);
        let edges = (0..ops.len() - 1).map(|i| (i, i + 1)).collect();
        Query::new(ops, edges)
    }

    fn edge_fog_cloud() -> Cluster {
        Cluster::new(vec![
            Host {
                cpu: 50.0,
                ram_mb: 1000.0,
                bandwidth_mbits: 25.0,
                latency_ms: 160.0,
            },
            Host {
                cpu: 300.0,
                ram_mb: 8000.0,
                bandwidth_mbits: 400.0,
                latency_ms: 10.0,
            },
            Host {
                cpu: 800.0,
                ram_mb: 32000.0,
                bandwidth_mbits: 10000.0,
                latency_ms: 1.0,
            },
        ])
    }

    #[test]
    fn monotone_placement_is_valid() {
        let q = chain_query(2);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 2, 2]);
        assert!(p.is_valid(&q, &c));
    }

    #[test]
    fn colocation_is_valid() {
        let q = chain_query(2);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![1, 1, 1, 1]);
        assert!(p.is_valid(&q, &c));
        assert_eq!(p.ops_on_host(1).len(), 4);
        assert_eq!(p.hosts_used(), vec![1]);
    }

    #[test]
    fn decreasing_capability_rejected() {
        let q = chain_query(1);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![2, 0, 0]);
        assert_eq!(
            p.validate(&q, &c),
            Err(PlacementViolation::DecreasingCapability { from: 0, to: 1 })
        );
    }

    #[test]
    fn host_revisit_rejected() {
        // source on fog(1), filter on fog(1)... need a revisit within same
        // bin to isolate rule ③: fog -> fog' -> fog. Use two fog hosts.
        let c = Cluster::new(vec![
            Host {
                cpu: 300.0,
                ram_mb: 8000.0,
                bandwidth_mbits: 400.0,
                latency_ms: 10.0,
            },
            Host {
                cpu: 300.0,
                ram_mb: 8000.0,
                bandwidth_mbits: 400.0,
                latency_ms: 10.0,
            },
        ]);
        let q = chain_query(2);
        let p = Placement::new(vec![0, 1, 0, 0]);
        assert_eq!(
            p.validate(&q, &c),
            Err(PlacementViolation::CyclicHostVisit { op: 2, host: 0 })
        );
    }

    #[test]
    fn wrong_arity_rejected() {
        let q = chain_query(1);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1]);
        assert!(matches!(p.validate(&q, &c), Err(PlacementViolation::WrongArity { .. })));
    }

    #[test]
    fn neighborhood_incremental_matches_full_validation() {
        use super::neighborhood::{Move, Neighborhood};
        let q = chain_query(3);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 1, 2, 2]);
        assert!(p.is_valid(&q, &c));
        let nb = Neighborhood::new(&q, &c);
        let st = nb.visit_state(&p);
        for op in 0..q.len() {
            for to in 0..c.len() {
                if to == p.host_of(op) {
                    continue;
                }
                let mv = Move::Relocate { op, to };
                assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "relocate {op} -> {to}"
                );
            }
        }
        for a in 0..q.len() {
            for b in (a + 1)..q.len() {
                if p.host_of(a) == p.host_of(b) {
                    continue;
                }
                let mv = Move::Swap { a, b };
                assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "swap {a} <-> {b}"
                );
            }
        }
    }

    #[test]
    fn neighborhood_wide_cluster_matches_full_validation() {
        use super::neighborhood::{Move, Neighborhood};
        // 70 hosts (> 64): the visited sets span two bitmask words, so
        // this exercises the multi-word incremental path — which must
        // agree with full revalidation, including no-op rejection.
        let mut hosts = Vec::new();
        for i in 0..70 {
            // Mix of edge/fog/cloud-class hosts so both valid and
            // invalid relocations exist.
            let tier = i % 3;
            hosts.push(Host {
                cpu: [50.0, 300.0, 800.0][tier],
                ram_mb: [1000.0, 8000.0, 32000.0][tier],
                bandwidth_mbits: [25.0, 400.0, 10000.0][tier],
                latency_ms: [160.0, 10.0, 1.0][tier],
            });
        }
        let c = Cluster::new(hosts);
        let q = chain_query(2);
        let p = Placement::new(vec![0, 1, 2, 2]);
        assert!(p.is_valid(&q, &c));
        let nb = Neighborhood::new(&q, &c);
        let st = nb.visit_state(&p);
        for op in 0..q.len() {
            // No-op relocation is rejected on wide clusters too.
            let noop = Move::Relocate { op, to: p.host_of(op) };
            assert!(!nb.is_valid_move(&p, &st, noop));
            for to in 0..c.len() {
                if to == p.host_of(op) {
                    continue;
                }
                let mv = Move::Relocate { op, to };
                assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "wide cluster: relocate {op} -> {to}"
                );
            }
        }
        for a in 0..q.len() {
            assert!(!nb.is_valid_move(&p, &st, Move::Swap { a, b: a }), "self-swap");
            for b in (a + 1)..q.len() {
                let mv = Move::Swap { a, b };
                let want = p.host_of(a) != p.host_of(b) && mv.apply(&p).is_valid(&q, &c);
                assert_eq!(nb.is_valid_move(&p, &st, mv), want, "wide cluster: swap {a} <-> {b}");
            }
        }
        // Generators work on wide clusters and emit valid neighbors.
        let neighbors = nb.neighbors(&p, &st);
        assert!(!neighbors.is_empty());
        for mv in neighbors {
            assert!(mv.apply(&p).is_valid(&q, &c));
        }
    }

    #[test]
    fn neighborhood_generators_emit_only_valid_placements() {
        use super::neighborhood::Neighborhood;
        let q = chain_query(2);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 2, 2]);
        let nb = Neighborhood::new(&q, &c);
        let st = nb.visit_state(&p);
        let neighbors = nb.neighbors(&p, &st);
        assert!(!neighbors.is_empty());
        for mv in neighbors {
            let np = mv.apply(&p);
            assert!(np.is_valid(&q, &c), "{mv:?} produced invalid {:?}", np.assignment());
            assert_ne!(np.assignment(), p.assignment(), "{mv:?} is a no-op");
        }
    }

    #[test]
    fn unknown_host_rejected() {
        let q = chain_query(1);
        let c = edge_fog_cloud();
        let p = Placement::new(vec![0, 1, 9]);
        assert!(matches!(
            p.validate(&q, &c),
            Err(PlacementViolation::UnknownHost { op: 2, host: 9 })
        ));
    }
}
