//! Graphviz DOT export of queries and placements, for debugging and
//! documentation. The rendering mirrors Fig. 3 of the paper: operator
//! nodes along the data flow, host nodes as boxes, placement edges dashed.

use crate::hardware::Cluster;
use crate::operators::{OpKind, Query};
use crate::placement::Placement;
use std::fmt::Write as _;

fn op_label(op: &OpKind) -> String {
    match op {
        OpKind::Source(s) => format!("source\\n{:.0} ev/s, w={}", s.event_rate, s.schema.width()),
        OpKind::Filter(f) => format!("filter\\nsel={:.2}", f.selectivity),
        OpKind::WindowAggregate(a) => format!("aggregate\\n{:?} w={:.1}", a.function, a.window.size),
        OpKind::WindowJoin(j) => format!("join\\nsel={:.4} w={:.1}", j.selectivity, j.window.size),
        OpKind::Sink => "sink".to_string(),
    }
}

/// Renders the logical query DAG as a DOT digraph.
pub fn query_to_dot(query: &Query) -> String {
    let mut s = String::from("digraph query {\n  rankdir=LR;\n  node [shape=ellipse];\n");
    for (id, op) in query.ops() {
        let _ = writeln!(s, "  op{id} [label=\"{}\"];", op_label(op));
    }
    for &(a, b) in query.edges() {
        let _ = writeln!(s, "  op{a} -> op{b};");
    }
    s.push_str("}\n");
    s
}

/// Renders the joint operator-resource view: the query DAG plus host nodes
/// and dashed placement edges (Fig. 3 ③ of the paper).
pub fn placement_to_dot(query: &Query, cluster: &Cluster, placement: &Placement) -> String {
    let mut s = String::from("digraph placement {\n  rankdir=LR;\n  node [shape=ellipse];\n");
    for (id, op) in query.ops() {
        let _ = writeln!(s, "  op{id} [label=\"{}\"];", op_label(op));
    }
    for &h in &placement.hosts_used() {
        let host = cluster.host(h);
        let _ = writeln!(
            s,
            "  host{h} [shape=box, style=filled, fillcolor=lightyellow, label=\"host {h}\\ncpu={:.0}% ram={:.0}MB\\nbw={:.0}Mb/s lat={:.0}ms\"];",
            host.cpu, host.ram_mb, host.bandwidth_mbits, host.latency_ms
        );
    }
    for &(a, b) in query.edges() {
        let _ = writeln!(s, "  op{a} -> op{b};");
    }
    for (op, _) in query.ops() {
        let _ = writeln!(
            s,
            "  op{op} -> host{} [style=dashed, dir=none, color=gray];",
            placement.host_of(op)
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGenerator;
    use crate::ranges::FeatureRanges;

    #[test]
    fn query_dot_mentions_every_operator_and_edge() {
        let mut g = WorkloadGenerator::new(1, FeatureRanges::training());
        let q = g.query();
        let dot = query_to_dot(&q);
        assert!(dot.starts_with("digraph query {"));
        for (id, _) in q.ops() {
            assert!(dot.contains(&format!("op{id} ")));
        }
        assert_eq!(dot.matches(" -> ").count(), q.edges().len());
    }

    #[test]
    fn placement_dot_includes_hosts_and_dashed_edges() {
        let mut g = WorkloadGenerator::new(2, FeatureRanges::training());
        let (q, c, p) = g.workload_item();
        let dot = placement_to_dot(&q, &c, &p);
        for h in p.hosts_used() {
            assert!(dot.contains(&format!("host{h} [shape=box")));
        }
        assert_eq!(dot.matches("style=dashed").count(), q.len());
    }

    #[test]
    fn dot_is_deterministic() {
        let mut g1 = WorkloadGenerator::new(3, FeatureRanges::training());
        let mut g2 = WorkloadGenerator::new(3, FeatureRanges::training());
        assert_eq!(query_to_dot(&g1.query()), query_to_dot(&g2.query()));
    }
}
