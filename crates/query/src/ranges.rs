//! Feature ranges of the synthetic benchmark.
//!
//! [`FeatureRanges::training`] reproduces Table II of the paper verbatim.
//! The interpolation ranges of Table IV-A and the per-dimension restricted
//! training/extrapolation ranges of Table V are provided as named
//! constructors so the generalization experiments (Exp 3/4) can be driven
//! from the same machinery.

use serde::{Deserialize, Serialize};

/// Discrete value ranges the workload generator samples from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeatureRanges {
    /// CPU values in % of a reference core.
    pub cpu: Vec<f64>,
    /// RAM values in MB.
    pub ram_mb: Vec<f64>,
    /// Network bandwidth values in Mbit/s.
    pub bandwidth_mbits: Vec<f64>,
    /// Network latency values in ms.
    pub latency_ms: Vec<f64>,
    /// Source event rates for linear queries in events/s.
    pub event_rate_linear: Vec<f64>,
    /// Source event rates for 2-way join queries in events/s.
    pub event_rate_two_way: Vec<f64>,
    /// Source event rates for 3-way join queries in events/s.
    pub event_rate_three_way: Vec<f64>,
    /// Tuple widths (number of attributes).
    pub tuple_widths: Vec<usize>,
    /// Count-based window sizes in tuples.
    pub window_size_count: Vec<f64>,
    /// Time-based window sizes in seconds.
    pub window_size_time: Vec<f64>,
    /// Slide factor range `[lo, hi]` as a fraction of the window length.
    pub slide_factor: (f64, f64),
}

impl FeatureRanges {
    /// Table II — the full synthetic training range.
    pub fn training() -> Self {
        FeatureRanges {
            cpu: vec![50.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0],
            ram_mb: vec![1000.0, 2000.0, 4000.0, 8000.0, 16000.0, 24000.0, 32000.0],
            bandwidth_mbits: vec![25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 10000.0],
            latency_ms: vec![1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0],
            event_rate_linear: vec![100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0, 12800.0, 25600.0],
            event_rate_two_way: vec![50.0, 100.0, 250.0, 500.0, 750.0, 1000.0, 1250.0, 1500.0, 1750.0, 2000.0],
            event_rate_three_way: vec![
                20.0, 50.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0, 900.0, 1000.0,
            ],
            tuple_widths: (3..=10).collect(),
            window_size_count: vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0],
            window_size_time: vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
            slide_factor: (0.3, 0.7),
        }
    }

    /// Table IV-A — hardware values *between* the training grid points,
    /// used by the interpolation experiment (Exp 3).
    pub fn interpolation_eval() -> Self {
        let mut r = Self::training();
        r.ram_mb = vec![1500.0, 3000.0, 6000.0, 12000.0, 20000.0, 28000.0];
        r.cpu = vec![75.0, 150.0, 250.0, 350.0, 450.0, 550.0, 650.0, 750.0];
        r.bandwidth_mbits = vec![35.0, 75.0, 150.0, 250.0, 550.0, 1200.0, 1900.0, 4800.0, 8000.0];
        r.latency_ms = vec![3.0, 7.0, 15.0, 30.0, 60.0, 120.0];
        r
    }

    /// The hardware dimension restricted by an extrapolation experiment.
    pub fn restrict(&self, dim: HardwareDim, values: Vec<f64>) -> Self {
        let mut r = self.clone();
        match dim {
            HardwareDim::Ram => r.ram_mb = values,
            HardwareDim::Cpu => r.cpu = values,
            HardwareDim::Bandwidth => r.bandwidth_mbits = values,
            HardwareDim::Latency => r.latency_ms = values,
        }
        r
    }
}

/// One of the four hardware feature dimensions of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HardwareDim {
    /// Relative CPU resources.
    Cpu,
    /// RAM.
    Ram,
    /// Network bandwidth.
    Bandwidth,
    /// Network latency.
    Latency,
}

impl HardwareDim {
    /// All hardware dimensions.
    pub const ALL: [HardwareDim; 4] = [
        HardwareDim::Ram,
        HardwareDim::Cpu,
        HardwareDim::Bandwidth,
        HardwareDim::Latency,
    ];

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            HardwareDim::Ram => "RAM (MB)",
            HardwareDim::Cpu => "CPU (% of a core)",
            HardwareDim::Bandwidth => "Bandwidth (Mbit/s)",
            HardwareDim::Latency => "Latency (ms)",
        }
    }
}

/// Table V — one extrapolation setting: a restricted training range and a
/// disjoint out-of-range evaluation range for one hardware dimension.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExtrapolationSetting {
    /// Dimension under test.
    pub dim: HardwareDim,
    /// Values kept for training.
    pub train_values: Vec<f64>,
    /// Out-of-range values used for evaluation.
    pub eval_values: Vec<f64>,
}

/// Table V-A: extrapolation toward *stronger* resources.
pub fn extrapolation_stronger() -> Vec<ExtrapolationSetting> {
    vec![
        ExtrapolationSetting {
            dim: HardwareDim::Ram,
            train_values: vec![1000.0, 2000.0, 4000.0, 8000.0, 16000.0],
            eval_values: vec![24000.0, 32000.0],
        },
        ExtrapolationSetting {
            dim: HardwareDim::Cpu,
            train_values: vec![50.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0],
            eval_values: vec![700.0, 800.0],
        },
        ExtrapolationSetting {
            dim: HardwareDim::Bandwidth,
            train_values: vec![25.0, 50.0, 100.0, 200.0, 300.0, 800.0, 1600.0, 3200.0],
            eval_values: vec![6400.0, 10000.0],
        },
        ExtrapolationSetting {
            dim: HardwareDim::Latency,
            train_values: vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0],
            eval_values: vec![1.0, 2.0],
        },
    ]
}

/// Table V-B: extrapolation toward *weaker* resources.
pub fn extrapolation_weaker() -> Vec<ExtrapolationSetting> {
    vec![
        ExtrapolationSetting {
            dim: HardwareDim::Ram,
            train_values: vec![4000.0, 8000.0, 16000.0, 24000.0, 32000.0],
            eval_values: vec![1000.0, 2000.0],
        },
        ExtrapolationSetting {
            dim: HardwareDim::Cpu,
            train_values: vec![200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 800.0],
            eval_values: vec![50.0, 100.0],
        },
        ExtrapolationSetting {
            dim: HardwareDim::Bandwidth,
            train_values: vec![100.0, 200.0, 300.0, 800.0, 1600.0, 3200.0, 6400.0, 10000.0],
            eval_values: vec![25.0, 50.0],
        },
        ExtrapolationSetting {
            dim: HardwareDim::Latency,
            train_values: vec![1.0, 2.0, 5.0, 10.0, 20.0, 40.0],
            eval_values: vec![80.0, 160.0],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_ranges_match_table_ii() {
        let r = FeatureRanges::training();
        assert_eq!(r.cpu.len(), 9);
        assert_eq!(r.ram_mb.len(), 7);
        assert_eq!(r.bandwidth_mbits.len(), 10);
        assert_eq!(r.latency_ms.len(), 8);
        assert_eq!(r.event_rate_linear.len(), 9);
        assert_eq!(r.event_rate_two_way.len(), 10);
        assert_eq!(r.event_rate_three_way.len(), 12);
        assert_eq!(r.tuple_widths, (3..=10).collect::<Vec<_>>());
        assert_eq!(r.window_size_count.len(), 8);
        assert_eq!(r.window_size_time.len(), 7);
    }

    #[test]
    fn interpolation_values_lie_inside_training_hull() {
        let t = FeatureRanges::training();
        let i = FeatureRanges::interpolation_eval();
        let inside = |v: &[f64], lo: f64, hi: f64| v.iter().all(|&x| x >= lo && x <= hi);
        assert!(inside(&i.cpu, t.cpu[0], *t.cpu.last().unwrap()));
        assert!(inside(&i.ram_mb, t.ram_mb[0], *t.ram_mb.last().unwrap()));
        assert!(inside(
            &i.bandwidth_mbits,
            t.bandwidth_mbits[0],
            *t.bandwidth_mbits.last().unwrap()
        ));
        assert!(inside(&i.latency_ms, t.latency_ms[0], *t.latency_ms.last().unwrap()));
        // ...but none of the values coincide with a training grid point.
        for v in &i.cpu {
            assert!(!t.cpu.contains(v));
        }
    }

    #[test]
    fn extrapolation_eval_disjoint_from_train() {
        for s in extrapolation_stronger().into_iter().chain(extrapolation_weaker()) {
            for v in &s.eval_values {
                assert!(!s.train_values.contains(v), "{:?} eval value {v} in train", s.dim);
            }
        }
    }

    #[test]
    fn restrict_replaces_only_one_dim() {
        let t = FeatureRanges::training();
        let r = t.restrict(HardwareDim::Cpu, vec![42.0]);
        assert_eq!(r.cpu, vec![42.0]);
        assert_eq!(r.ram_mb, t.ram_mb);
    }
}
