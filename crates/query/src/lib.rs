//! # costream-query — streaming queries, hardware and workloads
//!
//! The query-side substrate of the Costream reproduction:
//!
//! * [`operators`] — the algebraic streaming operator DAG (§III-A):
//!   sources, filters, windowed aggregations, windowed joins, sink;
//! * [`datatypes`] — tuple schemas and attribute types;
//! * [`hardware`] — heterogeneous hosts, clusters, capability bins;
//! * [`placement`] — operator→host mappings and the validity rules of the
//!   heuristic enumeration strategy (Fig. 5);
//! * [`joint`] — multi-query co-placement: joint placements with per-host
//!   occupancy and the cross-query edit neighborhood;
//! * [`features`] — the transferable features of Table I;
//! * [`ranges`] — the training/evaluation feature ranges of Tables II/IV/V;
//! * [`generator`] — the synthetic benchmark generator of §VI (Fig. 6
//!   templates);
//! * [`selectivity`] — noisy sample-based selectivity estimation (Defs 6–8);
//! * [`benchmarks`] — the real-world benchmark queries of Exp 6.

#![warn(missing_docs)]

pub mod benchmarks;
pub mod builder;
pub mod datatypes;
pub mod dot;
pub mod features;
pub mod generator;
pub mod hardware;
pub mod joint;
pub mod operators;
pub mod placement;
pub mod ranges;
pub mod selectivity;

pub use datatypes::{DataType, TupleSchema};
pub use generator::{QueryTemplate, WorkloadGenerator};
pub use hardware::{CapabilityBin, Cluster, Host, HostId};
pub use joint::{JointMove, JointNeighborhood, JointPlacement};
pub use operators::{OpId, OpKind, Query, WindowPolicy, WindowSpec, WindowType};
pub use placement::{Placement, PlacementViolation};
pub use ranges::FeatureRanges;
