//! Property-based tests of the cross-query joint neighborhood: the
//! incremental validity checks must agree with full per-query
//! revalidation for every candidate edit, and the incrementally
//! maintained occupancy must equal a full recount after every edit
//! sequence (mirrors `neighborhood_properties.rs` for the single-query
//! machinery).

use costream_query::generator::WorkloadGenerator;
use costream_query::joint::{count_occupancy, JointMove, JointNeighborhood, JointPlacement};
use costream_query::placement::{colocate_on_strongest, sample_valid};
use costream_query::ranges::FeatureRanges;
use costream_query::{Cluster, Query};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture(seed: u64) -> (Vec<Query>, Cluster, JointPlacement) {
    let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
    let n_queries = 2 + (seed % 2) as usize;
    let queries: Vec<Query> = (0..n_queries).map(|_| g.query()).collect();
    let cluster = g.cluster(3 + (seed % 3) as usize);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let placements = queries
        .iter()
        .map(|q| sample_valid(q, &cluster, &mut rng).unwrap_or_else(|| colocate_on_strongest(q, &cluster)))
        .collect();
    let jp = JointPlacement::new(cluster.len(), placements);
    (queries, cluster, jp)
}

/// Full revalidation of a joint move: apply it, then check every touched
/// query against the complete Fig. 5 rules and the occupancy against a
/// recount.
fn full_check(queries: &[&Query], cluster: &Cluster, jp: &JointPlacement, mv: JointMove) -> bool {
    // Degenerate edits the generators never emit are invalid by
    // definition (no-ops must be rejected so search never rescoring the
    // same assignment).
    match mv {
        JointMove::Relocate { query, op, to } => {
            if to >= cluster.len() || to == jp.query(query).host_of(op) {
                return false;
            }
        }
        JointMove::Swap { qa, a, qb, b } => {
            if (qa, a) == (qb, b) || jp.query(qa).host_of(a) == jp.query(qb).host_of(b) {
                return false;
            }
        }
    }
    jp.apply(mv).is_valid(queries, cluster)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incremental joint move check is exactly full revalidation:
    /// for every possible relocation, intra-query swap and cross-query
    /// swap, both judges agree.
    #[test]
    fn joint_incremental_check_equals_full_validation(seed in 0u64..100_000) {
        let (queries, cluster, jp) = fixture(seed);
        let refs: Vec<&Query> = queries.iter().collect();
        let jnb = JointNeighborhood::new(&refs, &cluster);
        let states = jnb.visit_states(&jp);
        for (q, query) in refs.iter().enumerate() {
            for op in 0..query.len() {
                for to in 0..cluster.len() {
                    if to == jp.query(q).host_of(op) {
                        continue;
                    }
                    let mv = JointMove::Relocate { query: q, op, to };
                    prop_assert_eq!(
                        jnb.is_valid_move(&jp, &states, mv),
                        full_check(&refs, &cluster, &jp, mv),
                        "relocate q{} op{} -> {} disagrees", q, op, to
                    );
                }
            }
        }
        for qa in 0..refs.len() {
            for qb in qa..refs.len() {
                for a in 0..refs[qa].len() {
                    let b0 = if qa == qb { a + 1 } else { 0 };
                    for b in b0..refs[qb].len() {
                        let mv = JointMove::Swap { qa, a, qb, b };
                        if jp.query(qa).host_of(a) == jp.query(qb).host_of(b) {
                            continue; // no-op exchange, rejected by both
                        }
                        prop_assert_eq!(
                            jnb.is_valid_move(&jp, &states, mv),
                            full_check(&refs, &cluster, &jp, mv),
                            "swap q{}.{} <-> q{}.{} disagrees", qa, a, qb, b
                        );
                    }
                }
            }
        }
    }

    /// The streaming and parallel joint enumerators are the same
    /// function as the allocating one: `neighbors_into` and
    /// `neighbors_into_par` reproduce `neighbors` element for element,
    /// order included, and `flattened_after` equals apply-then-flatten
    /// for every emitted move.
    #[test]
    fn joint_streaming_and_parallel_enumeration_match_serial(seed in 0u64..50_000) {
        let (queries, cluster, jp) = fixture(seed);
        let refs: Vec<&Query> = queries.iter().collect();
        let jnb = JointNeighborhood::new(&refs, &cluster);
        let mut states = jnb.visit_states(&jp);
        let expected = jnb.neighbors(&jp, &states);
        // Reuse state and buffers across calls, as the strategies do.
        jnb.visit_states_into(&jp, &mut states);
        let mut streamed = Vec::new();
        let counts = jnb.neighbors_into(&jp, &states, &mut streamed);
        prop_assert_eq!(&streamed, &expected);
        prop_assert_eq!(counts.generated as usize, expected.len());
        let mut chunked = Vec::new();
        let par_counts = jnb.neighbors_into_par(&jp, &states, &mut chunked);
        prop_assert_eq!(&chunked, &expected);
        prop_assert_eq!(par_counts, counts);
        let mut flat = Vec::new();
        for mv in expected {
            jp.flattened_after(mv, &mut flat);
            prop_assert_eq!(&flat, &jp.apply(mv).flattened(), "{:?}", mv);
        }
    }

    /// Along every edit sequence the generators produce, incremental
    /// occupancy bookkeeping equals a full recount, every emitted
    /// neighbor is valid, and chained edits remain valid bases.
    #[test]
    fn joint_edit_sequences_keep_occupancy_and_validity(seed in 0u64..100_000) {
        let (queries, cluster, mut jp) = fixture(seed);
        let refs: Vec<&Query> = queries.iter().collect();
        prop_assert!(jp.is_valid(&refs, &cluster));
        let jnb = JointNeighborhood::new(&refs, &cluster);
        for round in 0..4usize {
            let states = jnb.visit_states(&jp);
            let neighbors = jnb.neighbors(&jp, &states);
            for mv in &neighbors {
                let np = jp.apply(*mv);
                prop_assert!(np.is_valid(&refs, &cluster),
                    "round {}: {:?} produced invalid joint placement", round, mv);
                let recount = count_occupancy(cluster.len(), np.placements());
                prop_assert_eq!(
                    np.occupancy(),
                    recount.as_slice(),
                    "round {}: {:?} broke occupancy bookkeeping", round, mv
                );
                prop_assert_ne!(np.flattened(), jp.flattened(), "{:?} is a no-op", mv);
            }
            // Chain: continue the walk from a mid-list neighbor.
            match neighbors.get(round % neighbors.len().max(1)) {
                Some(mv) => jp = jp.apply(*mv),
                None => break,
            }
        }
    }
}
