//! Property-based tests of the placement neighborhood generators: the
//! incremental Fig. 5 validity checks must agree with full revalidation
//! on every candidate edit, and every emitted neighbor must satisfy the
//! same rules `sample_valid` enforces.

use costream_query::generator::WorkloadGenerator;
use costream_query::hardware::{Cluster, Host};
use costream_query::placement::neighborhood::{Move, Neighborhood};
use costream_query::placement::{colocate_on_strongest, sample_valid};
use costream_query::ranges::FeatureRanges;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A ~100-host heterogeneous cluster: edge/fog/cloud tiers cycling, with
/// a small monotone per-host perturbation so hosts are distinct but stay
/// within their capability bin. Wide enough that the rule-③ visited-host
/// bitmasks span two `u64` words.
fn wide_cluster(n: usize) -> Cluster {
    let mut hosts = Vec::with_capacity(n);
    for i in 0..n {
        let tier = i % 3;
        let bump = 1.0 + 0.01 * (i / 3) as f64;
        hosts.push(Host {
            cpu: [50.0, 300.0, 800.0][tier] * bump,
            ram_mb: [1000.0, 8000.0, 32000.0][tier] * bump,
            bandwidth_mbits: [25.0, 400.0, 10000.0][tier] * bump,
            latency_ms: [160.0, 10.0, 1.0][tier],
        });
    }
    Cluster::new(hosts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental move check is exactly full revalidation: for every
    /// possible relocation and swap of a valid placement, both judges
    /// must agree.
    #[test]
    fn incremental_check_equals_full_validation(seed in 0u64..100_000) {
        let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
        let (q, c, _) = g.workload_item();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let p = sample_valid(&q, &c, &mut rng).unwrap_or_else(|| colocate_on_strongest(&q, &c));
        prop_assert!(p.is_valid(&q, &c));
        let nb = Neighborhood::new(&q, &c);
        let st = nb.visit_state(&p);
        for op in 0..q.len() {
            for to in 0..c.len() {
                if to == p.host_of(op) {
                    continue;
                }
                let mv = Move::Relocate { op, to };
                prop_assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "relocate {} -> {} disagrees", op, to
                );
            }
        }
        for a in 0..q.len() {
            for b in (a + 1)..q.len() {
                if p.host_of(a) == p.host_of(b) {
                    continue;
                }
                let mv = Move::Swap { a, b };
                prop_assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "swap {} <-> {} disagrees", a, b
                );
            }
        }
    }

    /// The same agreement on a ~100-host cluster, where the visited-host
    /// bitmasks span multiple words: the incremental path (not a
    /// full-revalidation fallback) must still equal full revalidation for
    /// every candidate edit.
    #[test]
    fn incremental_check_equals_full_validation_on_wide_cluster(seed in 0u64..20_000) {
        let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
        let (q, _, _) = g.workload_item();
        let c = wide_cluster(100);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(3));
        let p = sample_valid(&q, &c, &mut rng).unwrap_or_else(|| colocate_on_strongest(&q, &c));
        prop_assert!(p.is_valid(&q, &c));
        let nb = Neighborhood::new(&q, &c);
        let st = nb.visit_state(&p);
        for op in 0..q.len() {
            for to in 0..c.len() {
                if to == p.host_of(op) {
                    continue;
                }
                let mv = Move::Relocate { op, to };
                prop_assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "wide cluster: relocate {} -> {} disagrees", op, to
                );
            }
        }
        for a in 0..q.len() {
            for b in (a + 1)..q.len() {
                if p.host_of(a) == p.host_of(b) {
                    continue;
                }
                let mv = Move::Swap { a, b };
                prop_assert_eq!(
                    nb.is_valid_move(&p, &st, mv),
                    mv.apply(&p).is_valid(&q, &c),
                    "wide cluster: swap {} <-> {} disagrees", a, b
                );
            }
        }
    }

    /// Incremental == full revalidation at the bitmask word boundaries:
    /// 63/64/65 and 127/128/129 hosts exercise the last bit of a word,
    /// an exact word fill and the first bit of the next word, for every
    /// relocation and swap of a valid placement.
    #[test]
    fn incremental_check_agrees_at_word_boundaries(seed in 0u64..8_000) {
        let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
        let (q, _, _) = g.workload_item();
        for &n in &[63usize, 64, 65, 127, 128, 129] {
            let c = wide_cluster(n);
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(5));
            let p = sample_valid(&q, &c, &mut rng).unwrap_or_else(|| colocate_on_strongest(&q, &c));
            prop_assert!(p.is_valid(&q, &c));
            let nb = Neighborhood::new(&q, &c);
            let st = nb.visit_state(&p);
            for op in 0..q.len() {
                for to in 0..c.len() {
                    if to == p.host_of(op) {
                        continue;
                    }
                    let mv = Move::Relocate { op, to };
                    prop_assert_eq!(
                        nb.is_valid_move(&p, &st, mv),
                        mv.apply(&p).is_valid(&q, &c),
                        "{} hosts: relocate {} -> {} disagrees", n, op, to
                    );
                }
            }
            for a in 0..q.len() {
                for b in (a + 1)..q.len() {
                    if p.host_of(a) == p.host_of(b) {
                        continue;
                    }
                    let mv = Move::Swap { a, b };
                    prop_assert_eq!(
                        nb.is_valid_move(&p, &st, mv),
                        mv.apply(&p).is_valid(&q, &c),
                        "{} hosts: swap {} <-> {} disagrees", n, a, b
                    );
                }
            }
        }
    }

    /// The streaming and parallel enumerators are the same function as
    /// the allocating one: `neighbors_into` and `neighbors_into_par`
    /// reproduce `neighbors` element for element (order included) on
    /// narrow and multi-word-wide clusters alike.
    #[test]
    fn streaming_and_parallel_enumeration_match_serial(seed in 0u64..20_000) {
        let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
        let (q, narrow, _) = g.workload_item();
        for c in [narrow, wide_cluster(130)] {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(7));
            let p = sample_valid(&q, &c, &mut rng).unwrap_or_else(|| colocate_on_strongest(&q, &c));
            let nb = Neighborhood::new(&q, &c);
            let mut st = nb.visit_state(&p);
            let expected = nb.neighbors(&p, &st);
            // Reuse state and buffers across calls, as the strategies do.
            nb.visit_state_into(&p, &mut st);
            let mut streamed = Vec::new();
            let counts = nb.neighbors_into(&p, &st, &mut streamed);
            prop_assert_eq!(&streamed, &expected);
            prop_assert_eq!(counts.generated as usize, expected.len());
            let mut chunked = Vec::new();
            let par_counts = nb.neighbors_into_par(&p, &st, &mut chunked);
            prop_assert_eq!(&chunked, &expected);
            prop_assert_eq!(par_counts, counts);
        }
    }

    /// Every neighbor the generators emit satisfies the same validity
    /// rules as `sample_valid`'s output — including after chaining edits
    /// (each neighbor is itself a valid base for the next round).
    #[test]
    fn generated_neighbors_always_valid(seed in 0u64..100_000) {
        let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
        let (q, c, _) = g.workload_item();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
        let mut p = sample_valid(&q, &c, &mut rng).unwrap_or_else(|| colocate_on_strongest(&q, &c));
        for round in 0..3 {
            let nb = Neighborhood::new(&q, &c);
            let st = nb.visit_state(&p);
            let neighbors = nb.neighbors(&p, &st);
            for mv in &neighbors {
                let np = mv.apply(&p);
                prop_assert!(np.is_valid(&q, &c), "round {}: {:?} produced invalid placement", round, mv);
                prop_assert_ne!(np.assignment(), p.assignment());
            }
            // Chain: continue the walk from the first neighbor (if any).
            match neighbors.first() {
                Some(mv) => p = mv.apply(&p),
                None => break,
            }
        }
    }
}
