//! Allocation audit of the hot search loop: once buffers have reached
//! their steady-state size, one full round of neighborhood work at 256
//! hosts — rule ③ state recomputation, full move enumeration and
//! candidate assignment materialization — must not allocate at all.
//! This pins the zero-alloc contract the wide-cluster strategies rely
//! on: per-candidate cost is a few comparisons and mask words, never a
//! malloc.
//!
//! Single test in this file on purpose: the counting allocator is
//! process-global, and a lone test keeps the measured window free of
//! harness noise from sibling tests on other threads (the counter is
//! thread-local anyway, but one test makes the audit unambiguous).

use costream_query::generator::WorkloadGenerator;
use costream_query::hardware::{Cluster, Host};
use costream_query::placement::neighborhood::Neighborhood;
use costream_query::placement::{colocate_on_strongest, sample_valid};
use costream_query::ranges::FeatureRanges;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Counts allocations (and growing reallocations) on the current thread;
/// frees are not counted — the audit is about acquiring memory in the
/// steady state, not returning it.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_now() -> u64 {
    ALLOCS.with(|c| c.get())
}

/// The 256-host edge/fog/cloud cluster of the wide-search benches.
fn wide_cluster(n: usize) -> Cluster {
    let mut hosts = Vec::with_capacity(n);
    for i in 0..n {
        let tier = i % 3;
        let bump = 1.0 + 0.01 * (i / 3) as f64;
        hosts.push(Host {
            cpu: [50.0, 300.0, 800.0][tier] * bump,
            ram_mb: [1000.0, 8000.0, 32000.0][tier] * bump,
            bandwidth_mbits: [25.0, 400.0, 10000.0][tier] * bump,
            latency_ms: [160.0, 10.0, 1.0][tier],
        });
    }
    Cluster::new(hosts)
}

#[test]
fn steady_state_neighborhood_round_never_allocates() {
    let mut g = WorkloadGenerator::new(9_201, FeatureRanges::training());
    let q = g.query();
    let c = wide_cluster(256);
    let mut rng = StdRng::seed_from_u64(9_202);
    let p = sample_valid(&q, &c, &mut rng).unwrap_or_else(|| colocate_on_strongest(&q, &c));
    let nb = Neighborhood::new(&q, &c);

    // Warm-up: let the visit state, the move buffer and the edit buffer
    // grow to their steady-state capacity (the move list of a 256-host
    // neighborhood is the largest of the three).
    let mut state = nb.visit_state(&p);
    let mut moves = Vec::new();
    nb.neighbors_into(&p, &state, &mut moves);
    assert!(!moves.is_empty(), "a 256-host neighborhood cannot be empty");
    let mut edit = Vec::new();
    moves[0].apply_into(&p, &mut edit);

    let before = allocs_now();
    for _ in 0..16 {
        nb.visit_state_into(&p, &mut state);
        nb.neighbors_into(&p, &state, &mut moves);
        for mv in &moves {
            mv.apply_into(&p, &mut edit);
        }
    }
    let delta = allocs_now() - before;
    assert_eq!(
        delta, 0,
        "steady-state search round allocated {delta} times (expected zero)"
    );
}
