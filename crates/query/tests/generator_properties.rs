//! Property-based tests of the workload model.

use costream_query::generator::{QueryTemplate, WorkloadGenerator};
use costream_query::operators::{OpKind, WindowPolicy, WindowSpec, WindowType};
use costream_query::ranges::FeatureRanges;
use costream_query::selectivity::SelectivityEstimator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated query validates, has exactly one sink, and its
    /// schemas are derivable end to end.
    #[test]
    fn generated_queries_always_validate(seed in 0u64..100_000) {
        let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
        let q = g.query();
        prop_assert!(q.validate().is_ok());
        let schemas = q.output_schemas();
        prop_assert_eq!(schemas.len(), q.len());
        for (id, _) in q.ops() {
            prop_assert!(schemas[id].width() >= 1);
        }
    }

    /// Explicit template control produces the right operator counts.
    #[test]
    fn template_controls_source_and_join_counts(seed in 0u64..100_000, filters in 0usize..5) {
        let mut g = WorkloadGenerator::new(seed, FeatureRanges::training());
        for (t, srcs, joins) in [
            (QueryTemplate::Linear, 1, 0),
            (QueryTemplate::TwoWayJoin, 2, 1),
            (QueryTemplate::ThreeWayJoin, 3, 2),
        ] {
            let q = g.query_with(t, filters, false);
            let (s, f, a, j) = q.kind_counts();
            prop_assert_eq!(s, srcs);
            prop_assert_eq!(j, joins);
            prop_assert_eq!(f, filters);
            prop_assert_eq!(a, 0);
        }
    }

    /// Window emission periods and tuple counts are positive and
    /// consistent between policies.
    #[test]
    fn window_math_is_consistent(size_idx in 0usize..8, rate in 1.0f64..30_000.0, slide_frac in 0.3f64..0.7) {
        let sizes = [5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0];
        let size = sizes[size_idx];
        for policy in [WindowPolicy::CountBased, WindowPolicy::TimeBased] {
            let w = WindowSpec { window_type: WindowType::Sliding, policy, size, slide: size * slide_frac };
            prop_assert!(w.tuples_in_window(rate) > 0.0);
            prop_assert!(w.emission_period(rate) > 0.0);
            // Emitting faster than the slide is impossible.
            let tumbling = WindowSpec { window_type: WindowType::Tumbling, policy, size, slide: size };
            prop_assert!(tumbling.emission_period(rate) >= w.emission_period(rate) * 0.99);
        }
    }

    /// Selectivity estimates never leave (0, 1] and the estimator is
    /// deterministic per seed.
    #[test]
    fn selectivity_estimates_bounded(seed in 0u64..100_000, sel in 1e-6f64..1.0) {
        let a = SelectivityEstimator::realistic(seed).estimate(sel);
        let b = SelectivityEstimator::realistic(seed).estimate(sel);
        prop_assert!(a > 0.0 && a <= 1.0);
        prop_assert_eq!(a, b);
    }

    /// Source rates of generated queries respect the per-template range.
    #[test]
    fn rates_come_from_template_range(seed in 0u64..100_000) {
        let ranges = FeatureRanges::training();
        let mut g = WorkloadGenerator::new(seed, ranges.clone());
        let q = g.query_of(QueryTemplate::ThreeWayJoin);
        for (_, op) in q.ops() {
            if let OpKind::Source(s) = op {
                prop_assert!(ranges.event_rate_three_way.contains(&s.event_rate));
            }
        }
    }
}
