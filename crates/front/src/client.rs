//! A blocking client for the front-end protocol, with explicit
//! send/recv halves so callers can pipeline.

use crate::wire::{self, FrameError, Request, RequestBody, Response, WireLane};
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's frame or payload could not be decoded.
    Frame(FrameError),
    /// The server closed the connection at a frame boundary.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Frame(other),
        }
    }
}

/// A blocking protocol client over one TCP connection.
///
/// [`FrontClient::send`] and [`FrontClient::recv`] are independent, so a
/// caller can keep several requests in flight; the server answers in
/// submission order per connection.
pub struct FrontClient {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl FrontClient {
    /// Connects to a front-end.
    ///
    /// # Errors
    /// Connection I/O errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(FrontClient {
            stream,
            // Generous client-side bound; the server enforces its own.
            max_frame_bytes: 64 << 20,
        })
    }

    /// Sends one request without waiting for the response.
    ///
    /// # Errors
    /// Transport errors.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        wire::write_frame(&mut self.stream, &wire::encode_request(req))?;
        Ok(())
    }

    /// Receives the next response.
    ///
    /// # Errors
    /// [`ClientError::Closed`] on clean EOF, transport/protocol errors
    /// otherwise.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match wire::read_frame(&mut self.stream, self.max_frame_bytes)? {
            Some(payload) => Ok(wire::decode_response(&payload)?),
            None => Err(ClientError::Closed),
        }
    }

    /// Sends one request and waits for one response — correct only when
    /// no other request is in flight on this connection.
    ///
    /// # Errors
    /// See [`FrontClient::send`] and [`FrontClient::recv`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        self.recv()
    }

    /// Liveness/metadata probe.
    ///
    /// # Errors
    /// See [`FrontClient::call`].
    pub fn ping(&mut self, id: u64) -> Result<Response, ClientError> {
        self.call(&Request {
            id,
            lane: WireLane::Interactive,
            deadline_us: None,
            body: RequestBody::Ping,
        })
    }

    /// Uploads graphs into this connection's slot pool.
    ///
    /// # Errors
    /// See [`FrontClient::call`].
    pub fn load_pool(
        &mut self,
        id: u64,
        base_slot: u32,
        graphs: Vec<costream::graph::JointGraph>,
    ) -> Result<Response, ClientError> {
        self.call(&Request {
            id,
            lane: WireLane::Interactive,
            deadline_us: None,
            body: RequestBody::LoadPool { base_slot, graphs },
        })
    }

    /// The underlying stream — for tests that need to misbehave at the
    /// byte level.
    #[doc(hidden)]
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
