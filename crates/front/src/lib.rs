//! # costream-front — the network-attached serving front-end
//!
//! `costream-serve` batches concurrent scoring requests *in process*.
//! This crate puts a wire protocol and a fault-tolerance boundary in
//! front of it, turning the batcher into a deployable service:
//!
//! * **Length-prefixed-JSON protocol** over [`std::net`] (see
//!   [`wire`]): a 4-byte big-endian length header followed by a JSON
//!   payload. The vendored serde shim prints floats shortest-roundtrip,
//!   so an `f64` score survives the wire **bitwise** — the golden tests
//!   compare served scores against direct in-process prediction with
//!   `==`. An async (tokio/axum) transport is a feature-gated stub
//!   ([`async_transport`]) until the build environment has network
//!   crates.
//! * **Signature-sharded scoring** (see [`server`]): the front-end runs
//!   [`FrontConfig::shards`] independent `ScoringService`s and routes
//!   each request by the hash of its plan signature, so every shard's
//!   plan-cache LRU stays hot on its own subset of graph shapes instead
//!   of all shards thrashing over the full shape universe.
//! * **Priority QoS and deadlines**: the wire request carries a lane
//!   ([`wire::WireLane`]) and an optional *relative* deadline in
//!   microseconds (relative, so clients need no clock sync with the
//!   server); both map directly onto the serving layer's lanes and
//!   load-shedding.
//! * **Versioned hot model swap**: [`server::Frontend::swap_model`]
//!   atomically replaces the model on every shard with zero downtime;
//!   each scored response reports the version that produced it.
//! * **Connection-level fault handling**: malformed payloads get a
//!   typed error response and the connection keeps serving; oversized
//!   frames get a typed error and a close; mid-frame disconnects are
//!   dropped silently — none of these can kill the acceptor.
//! * **Graceful drain**: [`server::Frontend::shutdown`] stops
//!   accepting, closes connection reads, finishes everything already
//!   submitted (bounded by a deadline), then exits.
//!
//! A reusable load generator ([`loadgen`]) drives a front-end with
//! mixed-lane pipelined traffic and optional connection-level fault
//! injection, recording per-lane latency-percentile trajectories — the
//! bench harness uses it for the sustained million-request run.

#![warn(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod server;
pub mod wire;

#[cfg(feature = "async-transport")]
pub mod async_transport;

pub use client::{ClientError, FrontClient};
pub use server::{FrontReport, FrontStats, Frontend};
pub use wire::{ErrorKind, FrameError, Request, RequestBody, Response, WireLane};

use costream_serve::ServeConfig;

/// Front-end tuning knobs.
#[derive(Clone, Debug)]
pub struct FrontConfig {
    /// Independent `ScoringService` shards. Requests route by
    /// `hash(plan_signature) % shards`, so recurring graph shapes always
    /// land on the same shard and its plan-cache LRU stays hot on them.
    /// Each shard gets its own worker pool and queue budgets from
    /// [`FrontConfig::serve`].
    pub shards: usize,
    /// Per-shard serving configuration (workers, batch shape, lane
    /// queue budgets, precision).
    pub serve: ServeConfig,
    /// Maximum accepted frame payload, bytes. A frame header declaring
    /// more is answered with a typed `Oversized` error and the
    /// connection is closed (the stream cannot be resynchronized
    /// without consuming the payload).
    pub max_frame_bytes: usize,
    /// Maximum responses in flight per connection: the reader stops
    /// pulling new frames while this many submitted requests are
    /// unanswered — per-connection backpressure, so one pipelining
    /// client cannot queue unbounded work.
    pub max_pipeline: usize,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            shards: 2,
            serve: ServeConfig::default(),
            max_frame_bytes: 8 << 20,
            max_pipeline: 128,
        }
    }
}
