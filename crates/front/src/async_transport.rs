//! Feature-gated stub of the async (tokio/axum) transport.
//!
//! The offline build environment has no tokio or axum, so the async
//! transport cannot be implemented yet. This module pins the intended
//! surface — the same [`wire`](crate::wire) protocol served from an
//! async accept loop, one task per connection instead of two threads —
//! so the migration is a transport swap, not a redesign:
//!
//! * `serve(addr, ensemble, cfg)` → an axum-less `tokio::net::TcpListener`
//!   accept loop; each connection runs a read task and a write task
//!   joined by an `mpsc` channel with capacity
//!   [`FrontConfig::max_pipeline`](crate::FrontConfig::max_pipeline).
//! * The blocking `ScoringService` stays the scoring backend via
//!   `spawn_blocking` (its workers already own the CPU-bound path).
//! * Framing, sharding, QoS, swap, and drain semantics are identical —
//!   they live in [`wire`](crate::wire) and
//!   [`server`](crate::server)-level policy, not in the transport.
//!
//! Enabling the `async-transport` feature compiles only this
//! documentation module; calling [`serve`] returns
//! [`AsyncUnavailable`].

use std::fmt;

/// Error returned by the stub: the async transport is not available in
/// this build.
#[derive(Debug, Clone, Copy)]
pub struct AsyncUnavailable;

impl fmt::Display for AsyncUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "async transport is a stub: this build has no tokio/axum; use server::Frontend (std::net)"
        )
    }
}

impl std::error::Error for AsyncUnavailable {}

/// Placeholder entry point of the future async transport.
///
/// # Errors
/// Always [`AsyncUnavailable`] in this build.
pub fn serve() -> Result<(), AsyncUnavailable> {
    Err(AsyncUnavailable)
}
