//! The front-end server: acceptor, per-connection reader/writer pairs,
//! signature-based shard routing, drain.
//!
//! Threading model (std-only, no async runtime in the offline build):
//!
//! * one **acceptor** thread owns the listener;
//! * each connection gets a **reader** (decode frames → route → submit)
//!   and a **writer** (await pending scores in submission order → write
//!   frames), coupled by a bounded job queue — the per-connection
//!   pipeline bound doubles as backpressure on the reader;
//! * scoring itself happens in the shards' own worker pools
//!   ([`costream_serve::ScoringService`]).
//!
//! Fault containment is per layer: an undecodable payload answers a
//! typed error and the connection keeps serving; an oversized or
//! truncated frame ends only that connection; a worker panic is
//! respawned inside the shard; nothing a client sends can reach the
//! acceptor.

use crate::wire::{self, decode_request, encode_response, ErrorKind, FrameError, Request, RequestBody, Response};
use crate::FrontConfig;
use costream::ensemble::Ensemble;
use costream::graph::JointGraph;
use costream::model::Scheme;
use costream::plan::plan_signature;
use costream_serve::{Pending, ScoreClient, ScoringService, ServeError, ServeStats, SubmitOptions, SwapError};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shard-routing key: the parts of the model config a plan signature
/// depends on. Swap-invariant (swaps must be plan-congruent), so it is
/// captured once at startup.
#[derive(Clone, Copy)]
struct RouteKey {
    scheme: Scheme,
    traditional_rounds: usize,
}

/// What one connection's writer still owes the peer.
enum Job {
    /// An immediately-known response (errors, pongs, load acks).
    Ready(Response),
    /// A submitted score: resolved when the shard answers.
    Scored { id: u64, pending: Pending },
}

/// Bounded FIFO between a connection's reader and writer. The bound is
/// the pipeline depth: a reader blocked here stops consuming frames,
/// which is exactly the backpressure the protocol promises.
struct JobQueue {
    state: Mutex<JobState>,
    /// Signalled when a job is pushed or the queue closes.
    items: Condvar,
    /// Signalled when a job is popped (space for the reader).
    space: Condvar,
    cap: usize,
}

struct JobState {
    jobs: std::collections::VecDeque<Job>,
    /// Reader finished: writer exits once the queue empties.
    closed: bool,
    /// Writer failed (peer gone): reader should stop pulling frames.
    dead: bool,
}

impl JobQueue {
    fn new(cap: usize) -> Self {
        JobQueue {
            state: Mutex::new(JobState {
                jobs: std::collections::VecDeque::new(),
                closed: false,
                dead: false,
            }),
            items: Condvar::new(),
            space: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Pushes a job, blocking while the pipeline is full. Returns
    /// `false` when the writer is gone and the job was discarded.
    fn push(&self, job: Job) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.jobs.len() >= self.cap && !st.dead {
            st = self.space.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.dead {
            return false;
        }
        st.jobs.push_back(job);
        self.items.notify_one();
        true
    }

    /// Pops the next job, blocking until one arrives or the queue is
    /// closed and empty.
    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = st.jobs.pop_front() {
                self.space.notify_one();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.items.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        self.items.notify_all();
    }

    fn mark_dead(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.dead = true;
        st.jobs.clear();
        self.space.notify_all();
    }
}

#[derive(Default)]
struct FrontCounters {
    connections: AtomicU64,
    bad_requests: AtomicU64,
    oversized: AtomicU64,
    disconnects: AtomicU64,
}

struct FrontShared {
    clients: Vec<ScoreClient>,
    route: RouteKey,
    cfg: FrontConfig,
    accepting: AtomicBool,
    conns: Mutex<Vec<ConnHandle>>,
    counters: FrontCounters,
}

struct ConnHandle {
    /// A clone of the connection's stream, kept so drain/shutdown can
    /// close it from outside the connection threads.
    stream: TcpStream,
    reader: JoinHandle<()>,
    writer: JoinHandle<()>,
}

/// Connection-level counters of the front-end (shard counters live in
/// [`FrontStats::shards`]).
#[derive(Clone, Debug)]
pub struct FrontStats {
    /// Connections accepted over the front-end's lifetime.
    pub connections: u64,
    /// Frames whose payload was not a decodable request (answered with
    /// a typed `BadRequest` error; connection kept).
    pub bad_requests: u64,
    /// Frames declaring an over-limit payload (answered with a typed
    /// `Oversized` error; connection closed).
    pub oversized: u64,
    /// Connections that ended mid-frame or with a transport error.
    pub disconnects: u64,
    /// Per-shard serving counters, indexed by shard.
    pub shards: Vec<ServeStats>,
}

impl FrontStats {
    /// Worker respawns summed over all shards.
    pub fn worker_respawns(&self) -> u64 {
        self.shards.iter().map(|s| s.worker_respawns).sum()
    }

    /// Completed requests summed over all shards.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }
}

/// What [`Frontend::shutdown`] achieved.
#[derive(Clone, Copy, Debug)]
pub struct FrontReport {
    /// Every request submitted before the drain was answered.
    pub drained: bool,
    /// Requests failed with `ShutDown` at the drain deadline, summed
    /// over shards.
    pub abandoned: u64,
}

/// The network front-end: a TCP acceptor over sharded
/// [`ScoringService`]s.
///
/// Dropping a `Frontend` shuts it down immediately (connections are
/// closed, queued work fails with `ShuttingDown`); call
/// [`Frontend::shutdown`] for a graceful drain.
pub struct Frontend {
    shards: Vec<ScoringService>,
    shared: Arc<FrontShared>,
    acceptor: Option<JoinHandle<()>>,
    addr: SocketAddr,
    stopped: bool,
}

impl Frontend {
    /// Binds `127.0.0.1:0` (the OS picks a free port) and starts
    /// serving `ensemble` — cloned into [`FrontConfig::shards`]
    /// independent scoring services.
    ///
    /// # Errors
    /// I/O errors from binding the listener.
    ///
    /// # Panics
    /// Panics when `cfg.shards` is zero.
    pub fn start(ensemble: Ensemble, cfg: FrontConfig) -> io::Result<Self> {
        assert!(cfg.shards > 0, "a front-end needs at least one shard");
        let model_cfg = ensemble.model_config();
        let route = RouteKey {
            scheme: model_cfg.scheme,
            traditional_rounds: model_cfg.traditional_rounds,
        };
        let shards: Vec<ScoringService> = (0..cfg.shards)
            .map(|_| ScoringService::start(ensemble.clone(), cfg.serve.clone()))
            .collect();
        let clients = shards.iter().map(ScoringService::client).collect();

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(FrontShared {
            clients,
            route,
            cfg,
            accepting: AtomicBool::new(true),
            conns: Mutex::new(Vec::new()),
            counters: FrontCounters::default(),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("costream-front-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Frontend {
            shards,
            shared,
            acceptor: Some(acceptor),
            addr,
            stopped: false,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Hot-swaps the served model on **every** shard (see
    /// [`ScoringService::swap_model`]). All shards serve clones of the
    /// same ensemble, so compatibility is uniform: either every shard
    /// accepts the replacement or none does.
    ///
    /// # Errors
    /// The first shard's [`SwapError`] when the replacement is not
    /// serving-compatible (no shard is swapped in that case).
    pub fn swap_model(&self, ensemble: &Ensemble) -> Result<u64, SwapError> {
        let mut version = 0;
        for shard in &self.shards {
            version = shard.swap_model(ensemble.clone())?;
        }
        Ok(version)
    }

    /// Connection- and shard-level counters.
    pub fn stats(&self) -> FrontStats {
        let c = &self.shared.counters;
        FrontStats {
            connections: c.connections.load(Ordering::Relaxed),
            bad_requests: c.bad_requests.load(Ordering::Relaxed),
            oversized: c.oversized.load(Ordering::Relaxed),
            disconnects: c.disconnects.load(Ordering::Relaxed),
            shards: self.shards.iter().map(ScoringService::stats).collect(),
        }
    }

    /// Fault-injection hook: panic one worker of `shard` at its next
    /// tick (see [`ScoringService::inject_worker_panic`]).
    #[doc(hidden)]
    pub fn inject_worker_panic(&self, shard: usize) {
        self.shards[shard].inject_worker_panic();
    }

    /// Graceful drain: stop accepting, stop reading new requests from
    /// every connection, finish everything already submitted (waiting up
    /// to `drain` per the shards' drain clock), flush the responses,
    /// then exit.
    pub fn shutdown(mut self, drain: Duration) -> FrontReport {
        self.stop(Some(drain))
    }

    fn stop(&mut self, drain: Option<Duration>) -> FrontReport {
        if self.stopped {
            return FrontReport {
                drained: true,
                abandoned: 0,
            };
        }
        self.stopped = true;
        // 1. Stop accepting; wake the blocked acceptor with a throwaway
        //    connection.
        self.shared.accepting.store(false, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // 2. Close the read half of every connection: readers see EOF at
        //    a frame boundary and stop submitting; writers keep flushing.
        let conns: Vec<ConnHandle> = self
            .shared
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for c in &conns {
            let _ = c.stream.shutdown(Shutdown::Read);
        }
        let (mut readers, mut writers) = (Vec::new(), Vec::new());
        for c in conns {
            readers.push(c.reader);
            writers.push((c.stream, c.writer));
        }
        for r in readers {
            let _ = r.join();
        }
        // 3. Drain (or immediately stop) the shards: every submitted
        //    request gets answered, which unblocks the writers.
        let mut drained = true;
        let mut abandoned = 0;
        for shard in &mut self.shards {
            let outcome = shard.shutdown_drain(drain.unwrap_or(Duration::ZERO));
            drained &= outcome.drained;
            abandoned += outcome.abandoned;
        }
        // 4. Let the writers flush the tail of answered responses, then
        //    close for real.
        for (stream, w) in writers {
            let _ = w.join();
            let _ = stream.shutdown(Shutdown::Both);
        }
        FrontReport { drained, abandoned }
    }
}

impl Drop for Frontend {
    fn drop(&mut self) {
        self.stop(None);
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<FrontShared>) {
    for stream in listener.incoming() {
        if !shared.accepting.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        // A peer that stops reading must not wedge its writer forever.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let Ok(read_half) = stream.try_clone() else { continue };
        let Ok(registry_handle) = stream.try_clone() else {
            continue;
        };
        let queue = Arc::new(JobQueue::new(shared.cfg.max_pipeline));
        let reader = {
            let shared = Arc::clone(shared);
            let queue = Arc::clone(&queue);
            let mut stream = read_half;
            std::thread::Builder::new()
                .name("costream-front-read".into())
                .spawn(move || reader_loop(&mut stream, &shared, &queue))
                .expect("spawn connection reader")
        };
        let writer = {
            let queue = Arc::clone(&queue);
            let mut stream = stream;
            std::thread::Builder::new()
                .name("costream-front-write".into())
                .spawn(move || {
                    writer_loop(&mut stream, &queue);
                    // The registry also holds a clone of this stream, so
                    // dropping ours would not send FIN. Shut the socket
                    // down explicitly (affects all clones) — everything
                    // owed to the peer has been flushed by now.
                    let _ = stream.shutdown(Shutdown::Both);
                })
                .expect("spawn connection writer")
        };
        let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        // Compact finished connections so a long-lived front-end with
        // connection churn doesn't grow the registry unboundedly.
        conns.retain(|c| !(c.reader.is_finished() && c.writer.is_finished()));
        conns.push(ConnHandle {
            stream: registry_handle,
            reader,
            writer,
        });
    }
}

/// Routes a graph to its shard: hash of the structural plan signature,
/// so recurring shapes deterministically reuse the same shard's plan
/// cache.
fn shard_of(graph: &JointGraph, route: RouteKey, shards: usize) -> usize {
    let sig = plan_signature(&[graph], route.scheme, route.traditional_rounds);
    let mut h = DefaultHasher::new();
    sig.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

fn reader_loop(stream: &mut TcpStream, shared: &Arc<FrontShared>, queue: &Arc<JobQueue>) {
    // Per-connection graph pool for `ScorePooled`: slot → (graph, shard).
    // Dropped with the connection.
    let mut pool: HashMap<u32, (Arc<JointGraph>, usize)> = HashMap::new();
    loop {
        match wire::read_frame(stream, shared.cfg.max_frame_bytes) {
            Ok(None) => break, // Clean close (or drain's read-shutdown).
            Ok(Some(payload)) => {
                let job = match decode_request(&payload) {
                    Ok(req) => handle_request(req, shared, &mut pool),
                    Err(e) => {
                        // The framing was intact — only the payload was
                        // bad. Answer typed and keep serving.
                        shared.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                        Job::Ready(Response::Error {
                            id: None,
                            kind: ErrorKind::BadRequest,
                            detail: e.to_string(),
                        })
                    }
                };
                if !queue.push(job) {
                    break; // Writer is gone; nobody to answer to.
                }
            }
            Err(FrameError::Oversized { declared, max }) => {
                // The payload was never consumed, so the stream cannot
                // be resynchronized: answer typed, then close.
                shared.counters.oversized.fetch_add(1, Ordering::Relaxed);
                queue.push(Job::Ready(Response::Error {
                    id: None,
                    kind: ErrorKind::Oversized,
                    detail: format!("frame declares {declared} bytes, max is {max}"),
                }));
                break;
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => {
                // Mid-frame disconnect: nothing to answer, nobody left
                // to hear it. Drop the connection silently.
                shared.counters.disconnects.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(FrameError::Malformed(_)) => unreachable!("read_frame does not decode payloads"),
        }
    }
    queue.close();
}

fn handle_request(req: Request, shared: &Arc<FrontShared>, pool: &mut HashMap<u32, (Arc<JointGraph>, usize)>) -> Job {
    let opts = SubmitOptions {
        lane: req.lane.into(),
        deadline: req.deadline_us.map(|us| Instant::now() + Duration::from_micros(us)),
    };
    match req.body {
        RequestBody::Ping => Job::Ready(Response::Pong {
            id: req.id,
            version: shared.clients[0].model_version(),
            shards: shared.clients.len() as u32,
        }),
        RequestBody::LoadPool { base_slot, graphs } => {
            let count = graphs.len() as u32;
            for (i, graph) in graphs.into_iter().enumerate() {
                let shard = shard_of(&graph, shared.route, shared.clients.len());
                pool.insert(base_slot.wrapping_add(i as u32), (Arc::new(graph), shard));
            }
            Job::Ready(Response::Loaded { id: req.id, count })
        }
        RequestBody::Score { graph } => {
            let shard = shard_of(&graph, shared.route, shared.clients.len());
            submit(req.id, Arc::new(graph), shard, opts, shared)
        }
        RequestBody::ScorePooled { slot } => match pool.get(&slot) {
            Some((graph, shard)) => submit(req.id, Arc::clone(graph), *shard, opts, shared),
            None => Job::Ready(Response::Error {
                id: Some(req.id),
                kind: ErrorKind::BadSlot,
                detail: format!("pool slot {slot} was never loaded on this connection"),
            }),
        },
    }
}

fn submit(id: u64, graph: Arc<JointGraph>, shard: usize, opts: SubmitOptions, shared: &Arc<FrontShared>) -> Job {
    match shared.clients[shard].submit_with(graph, opts) {
        Ok(pending) => Job::Scored { id, pending },
        Err(e) => Job::Ready(Response::Error {
            id: Some(id),
            kind: e.into(),
            detail: e.to_string(),
        }),
    }
}

fn writer_loop(stream: &mut TcpStream, queue: &Arc<JobQueue>) {
    while let Some(job) = queue.pop() {
        let response = match job {
            Job::Ready(r) => r,
            Job::Scored { id, pending } => match pending.wait_scored() {
                Ok(scored) => Response::Scored {
                    id,
                    score: scored.score,
                    version: scored.version,
                },
                Err(e @ ServeError::Overloaded)
                | Err(e @ ServeError::ShutDown)
                | Err(e @ ServeError::DeadlineExceeded)
                | Err(e @ ServeError::Internal) => Response::Error {
                    id: Some(id),
                    kind: e.into(),
                    detail: e.to_string(),
                },
            },
        };
        if wire::write_frame(stream, &encode_response(&response)).is_err() {
            // Peer gone: discard queued jobs and tell the reader to
            // stop pulling frames for this connection.
            queue.mark_dead();
            return;
        }
    }
}
