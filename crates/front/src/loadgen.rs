//! A reusable mixed-lane load generator for the front-end.
//!
//! Each connection uploads the graph pool once (`LoadPool`), then drives
//! pipelined `ScorePooled` traffic — requests on the wire are a few
//! dozen bytes, so a sustained million-request run is scoring-bound, not
//! serialization-bound. Interactive and bulk connections run
//! concurrently with independent deadlines; per-request latencies are
//! recorded and reduced to overall and per-window p50/p99 trajectories
//! (the bench harness persists those into `BENCH_micro.json`).
//!
//! With [`LoadgenConfig::faults`] enabled, a chaos thread continuously
//! attacks the front-end *while the measured traffic runs*: malformed
//! frames, oversized headers, and mid-frame disconnects. The report
//! counts the chaos rounds; the measured connections assert nothing
//! about them — the point is that the numbers hold up while the faults
//! land.

use crate::client::FrontClient;
use crate::wire::{Request, RequestBody, Response, WireLane};
use costream::graph::JointGraph;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Total requests across all connections (split evenly).
    pub requests: u64,
    /// Interactive-lane connections.
    pub interactive_conns: usize,
    /// Bulk-lane connections.
    pub bulk_conns: usize,
    /// Requests each connection keeps in flight.
    pub pipeline_depth: usize,
    /// Relative deadline for interactive requests, µs (None = no
    /// deadline).
    pub interactive_deadline_us: Option<u64>,
    /// Relative deadline for bulk requests, µs.
    pub bulk_deadline_us: Option<u64>,
    /// Latency-trajectory windows per lane (percentiles are computed
    /// per window in completion order).
    pub windows: usize,
    /// Run the connection-level chaos thread alongside the load.
    pub faults: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 100_000,
            interactive_conns: 2,
            bulk_conns: 2,
            pipeline_depth: 32,
            interactive_deadline_us: Some(1_000_000),
            bulk_deadline_us: Some(20_000),
            windows: 10,
            faults: false,
        }
    }
}

/// Per-lane outcome counts and latency percentiles.
#[derive(Clone, Debug, Default)]
pub struct LaneReport {
    /// Requests sent.
    pub sent: u64,
    /// Scored responses.
    pub ok: u64,
    /// Typed `Overloaded` rejections.
    pub overloaded: u64,
    /// Typed `DeadlineExceeded` sheds.
    pub shed: u64,
    /// Any other error responses.
    pub other_errors: u64,
    /// Overall p50 latency, nanoseconds (scored responses only).
    pub p50_ns: u64,
    /// Overall p99 latency, nanoseconds.
    pub p99_ns: u64,
    /// Per-window p50 trajectory, nanoseconds.
    pub window_p50_ns: Vec<u64>,
    /// Per-window p99 trajectory, nanoseconds.
    pub window_p99_ns: Vec<u64>,
}

/// The full run outcome.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Interactive-lane outcomes.
    pub interactive: LaneReport,
    /// Bulk-lane outcomes.
    pub bulk: LaneReport,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Chaos-thread attack rounds completed (0 when faults are off).
    pub chaos_rounds: u64,
}

struct ThreadOutcome {
    sent: u64,
    ok: u64,
    overloaded: u64,
    shed: u64,
    other_errors: u64,
    /// (completion index, latency ns) per scored response.
    latencies_ns: Vec<u64>,
}

/// Drives `cfg.requests` pipelined requests against `addr`, split over
/// the configured connections, and reduces per-lane latency
/// percentiles.
///
/// # Panics
/// Panics when the pool is empty, a connection cannot be established,
/// or the pool upload fails — load generation is a harness, not a
/// production path, and a broken fixture should fail loudly.
pub fn run(addr: SocketAddr, pool: &[JointGraph], cfg: &LoadgenConfig) -> LoadReport {
    assert!(!pool.is_empty(), "load generator needs a graph pool");
    assert!(cfg.interactive_conns + cfg.bulk_conns > 0, "no connections configured");
    let conns = cfg.interactive_conns + cfg.bulk_conns;
    let per_conn = (cfg.requests / conns as u64).max(1);

    let stop_chaos = AtomicBool::new(false);
    let started = Instant::now();
    let (interactive, bulk, chaos_rounds) = std::thread::scope(|s| {
        let chaos = cfg.faults.then(|| {
            let stop = &stop_chaos;
            s.spawn(move || chaos_loop(addr, stop))
        });
        let mut interactive_handles = Vec::new();
        let mut bulk_handles = Vec::new();
        for c in 0..conns {
            let lane = if c < cfg.interactive_conns {
                WireLane::Interactive
            } else {
                WireLane::Bulk
            };
            let deadline_us = match lane {
                WireLane::Interactive => cfg.interactive_deadline_us,
                WireLane::Bulk => cfg.bulk_deadline_us,
            };
            let handle = s.spawn(move || connection_loop(addr, pool, lane, deadline_us, per_conn, cfg.pipeline_depth));
            match lane {
                WireLane::Interactive => interactive_handles.push(handle),
                WireLane::Bulk => bulk_handles.push(handle),
            }
        }
        let interactive: Vec<ThreadOutcome> = interactive_handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread"))
            .collect();
        let bulk: Vec<ThreadOutcome> = bulk_handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread"))
            .collect();
        stop_chaos.store(true, Ordering::SeqCst);
        let chaos_rounds = chaos.map(|h| h.join().expect("chaos thread")).unwrap_or(0);
        (interactive, bulk, chaos_rounds)
    });

    LoadReport {
        interactive: reduce(interactive, cfg.windows),
        bulk: reduce(bulk, cfg.windows),
        elapsed: started.elapsed(),
        chaos_rounds,
    }
}

fn connection_loop(
    addr: SocketAddr,
    pool: &[JointGraph],
    lane: WireLane,
    deadline_us: Option<u64>,
    requests: u64,
    depth: usize,
) -> ThreadOutcome {
    let mut client = FrontClient::connect(addr).expect("loadgen connect");
    match client.load_pool(0, 0, pool.to_vec()).expect("pool upload") {
        Response::Loaded { .. } => {}
        other => panic!("pool upload answered {other:?}"),
    }
    let mut out = ThreadOutcome {
        sent: 0,
        ok: 0,
        overloaded: 0,
        shed: 0,
        other_errors: 0,
        latencies_ns: Vec::with_capacity(requests as usize),
    };
    // In-flight send timestamps, FIFO (the server answers per-connection
    // traffic in submission order).
    let mut in_flight: std::collections::VecDeque<Instant> = std::collections::VecDeque::with_capacity(depth);
    let depth = depth.max(1) as u64;
    let mut received = 0u64;
    while received < requests {
        while out.sent < requests && (out.sent - received) < depth {
            let req = Request {
                id: out.sent,
                lane,
                deadline_us,
                body: RequestBody::ScorePooled {
                    slot: (out.sent % pool.len() as u64) as u32,
                },
            };
            client.send(&req).expect("loadgen send");
            in_flight.push_back(Instant::now());
            out.sent += 1;
        }
        let response = client.recv().expect("loadgen recv");
        let sent_at = in_flight.pop_front().expect("response without request");
        received += 1;
        match response {
            Response::Scored { .. } => {
                out.ok += 1;
                out.latencies_ns.push(sent_at.elapsed().as_nanos() as u64);
            }
            Response::Error { kind, .. } => match kind {
                crate::wire::ErrorKind::Overloaded => out.overloaded += 1,
                crate::wire::ErrorKind::DeadlineExceeded => out.shed += 1,
                _ => out.other_errors += 1,
            },
            other => panic!("unexpected response to ScorePooled: {other:?}"),
        }
    }
    out
}

/// Connection-level fault injection: malformed payloads, oversized
/// headers, mid-frame disconnects — in a loop, against a live
/// front-end, until told to stop. Returns the number of full attack
/// rounds.
fn chaos_loop(addr: SocketAddr, stop: &AtomicBool) -> u64 {
    use std::io::Write;
    let mut rounds = 0;
    while !stop.load(Ordering::SeqCst) {
        // 1. Valid frame, garbage payload: expect a typed error back.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = crate::wire::write_frame(&mut s, b"{ not json");
        }
        // 2. Oversized header.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(&u32::MAX.to_be_bytes());
        }
        // 3. Mid-frame disconnect: declare 64 bytes, send 3, hang up.
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(&64u32.to_be_bytes());
            let _ = s.write_all(b"abc");
        }
        rounds += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    rounds
}

fn reduce(outcomes: Vec<ThreadOutcome>, windows: usize) -> LaneReport {
    let mut report = LaneReport::default();
    // Interleave the threads' completion-ordered latencies into shared
    // windows: window w of the lane = the w-th fraction of every
    // thread's run, so the trajectory reflects lane-wide time progress.
    let mut window_samples: Vec<Vec<u64>> = vec![Vec::new(); windows.max(1)];
    let mut all = Vec::new();
    for o in outcomes {
        report.sent += o.sent;
        report.ok += o.ok;
        report.overloaded += o.overloaded;
        report.shed += o.shed;
        report.other_errors += o.other_errors;
        let n = o.latencies_ns.len().max(1);
        for (i, ns) in o.latencies_ns.iter().enumerate() {
            let w = (i * windows.max(1)) / n;
            window_samples[w.min(windows.saturating_sub(1))].push(*ns);
        }
        all.extend(o.latencies_ns);
    }
    report.p50_ns = percentile(&mut all, 0.50);
    report.p99_ns = percentile(&mut all, 0.99);
    for mut w in window_samples {
        report.window_p50_ns.push(percentile(&mut w, 0.50));
        report.window_p99_ns.push(percentile(&mut w, 0.99));
    }
    report
}

/// Nearest-rank percentile over `samples` (sorted in place); 0 when
/// empty.
fn percentile(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64 - 1.0) * q).round() as usize;
    samples[rank.min(samples.len() - 1)]
}
