//! The wire protocol: framing and message types.
//!
//! A frame is a 4-byte **big-endian** payload length followed by that
//! many bytes of JSON. The decoder is total: any byte stream yields a
//! sequence of frames ending in clean EOF, [`FrameError::Truncated`],
//! [`FrameError::Oversized`], or an I/O error — never a panic (pinned
//! by the proptest suite).
//!
//! Messages are externally-tagged JSON enums ([`Request`] /
//! [`Response`]). Scores are `f64` and the vendored `serde_json` prints
//! floats shortest-roundtrip, so a score crosses the wire **bitwise**
//! intact. Deadlines are *relative* microseconds from server receipt —
//! a deliberate protocol choice: absolute deadlines would require
//! client/server clock agreement, and QoS budgets ("answer within
//! 2 ms") are what callers actually mean.
//!
//! Request ids are client-chosen and echoed verbatim; the server
//! answers every decodable request exactly once, in submission order
//! per connection.

use costream::graph::JointGraph;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame header width: a `u32` big-endian payload length.
pub const HEADER_BYTES: usize = 4;

/// Priority lane of a wire request (mirrors
/// [`costream_serve::Lane`] — redeclared here so the wire format is
/// self-contained).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireLane {
    /// Latency-sensitive traffic: drained strictly first.
    Interactive,
    /// Throughput traffic: absorbs queueing and shedding.
    Bulk,
}

impl From<WireLane> for costream_serve::Lane {
    fn from(lane: WireLane) -> Self {
        match lane {
            WireLane::Interactive => costream_serve::Lane::Interactive,
            WireLane::Bulk => costream_serve::Lane::Bulk,
        }
    }
}

/// One client request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Priority lane.
    pub lane: WireLane,
    /// Optional deadline, microseconds *from server receipt*. A request
    /// still queued past it is shed with a typed
    /// [`ErrorKind::DeadlineExceeded`] instead of being scored.
    pub deadline_us: Option<u64>,
    /// What to do.
    pub body: RequestBody,
}

/// The operation a [`Request`] asks for.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Score one inline joint graph.
    Score {
        /// The featurized joint graph to score.
        graph: JointGraph,
    },
    /// Upload graphs into this connection's slot pool (slots
    /// `base_slot..base_slot + graphs.len()`), so subsequent
    /// [`RequestBody::ScorePooled`] requests are a few dozen bytes
    /// instead of re-shipping the graph — the high-throughput path the
    /// load generator uses. Pools are per-connection and dropped on
    /// disconnect.
    LoadPool {
        /// First slot to fill.
        base_slot: u32,
        /// Graphs stored at consecutive slots.
        graphs: Vec<JointGraph>,
    },
    /// Score a previously uploaded pool slot.
    ScorePooled {
        /// Slot filled by an earlier [`RequestBody::LoadPool`].
        slot: u32,
    },
    /// Liveness/metadata probe.
    Ping,
}

/// One server response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A scored request.
    Scored {
        /// Echoed request id.
        id: u64,
        /// The ensemble prediction, bitwise as the model produced it.
        score: f64,
        /// Model version that scored this request.
        version: u64,
    },
    /// Pool slots stored.
    Loaded {
        /// Echoed request id.
        id: u64,
        /// Number of slots filled.
        count: u32,
    },
    /// Answer to [`RequestBody::Ping`].
    Pong {
        /// Echoed request id.
        id: u64,
        /// Current model version.
        version: u64,
        /// Number of scoring shards.
        shards: u32,
    },
    /// A typed failure.
    Error {
        /// Echoed request id; `None` when the payload was undecodable
        /// (there is no id to echo).
        id: Option<u64>,
        /// What went wrong.
        kind: ErrorKind,
        /// Human-readable context.
        detail: String,
    },
}

impl Response {
    /// The echoed request id, when the response carries one.
    pub fn id(&self) -> Option<u64> {
        match self {
            Response::Scored { id, .. } | Response::Loaded { id, .. } | Response::Pong { id, .. } => Some(*id),
            Response::Error { id, .. } => *id,
        }
    }
}

/// Typed failure kinds of [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The lane's admission queue is full; back off and retry.
    Overloaded,
    /// The request's deadline passed while it was queued; it was shed
    /// without being scored.
    DeadlineExceeded,
    /// The front-end is draining or stopped.
    ShuttingDown,
    /// The frame payload was not a decodable [`Request`]. The framing
    /// itself was intact, so the connection keeps serving.
    BadRequest,
    /// The frame header declared a payload larger than the server
    /// accepts. The connection is closed after this response (the
    /// stream cannot be resynchronized without consuming the payload).
    Oversized,
    /// The request referenced something that does not exist (e.g. a
    /// pool slot never loaded on this connection).
    BadSlot,
    /// Scoring failed server-side (e.g. a malformed graph panicking the
    /// kernel); only this request is affected.
    Internal,
}

impl From<costream_serve::ServeError> for ErrorKind {
    fn from(e: costream_serve::ServeError) -> Self {
        match e {
            costream_serve::ServeError::Overloaded => ErrorKind::Overloaded,
            costream_serve::ServeError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            costream_serve::ServeError::ShutDown => ErrorKind::ShuttingDown,
            costream_serve::ServeError::Internal => ErrorKind::Internal,
        }
    }
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended mid-header or mid-payload (mid-frame
    /// disconnect).
    Truncated,
    /// The header declared a payload longer than the configured maximum.
    Oversized {
        /// Length the header declared.
        declared: u32,
        /// Maximum the reader accepts.
        max: usize,
    },
    /// The payload was not valid UTF-8 JSON of the expected type.
    Malformed(String),
    /// The underlying transport failed.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} bytes, max is {max}")
            }
            FrameError::Malformed(e) => write!(f, "undecodable payload: {e}"),
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one frame. `Ok(None)` is clean EOF at a frame boundary;
/// EOF anywhere inside a frame is [`FrameError::Truncated`]. A header
/// declaring more than `max_payload` bytes fails [`FrameError::Oversized`]
/// *without* consuming the payload.
///
/// # Errors
/// See [`FrameError`].
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    let mut got = 0;
    while got < HEADER_BYTES {
        match r.read(&mut header[got..]) {
            Ok(0) => return if got == 0 { Ok(None) } else { Err(FrameError::Truncated) },
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let declared = u32::from_be_bytes(header);
    if declared as usize > max_payload {
        return Err(FrameError::Oversized {
            declared,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; declared as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(Some(payload))
}

/// Writes one frame (header + payload) as a single buffer.
///
/// # Errors
/// I/O errors from the transport; [`io::ErrorKind::InvalidInput`] when
/// the payload exceeds `u32::MAX` bytes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32::MAX"))?;
    // One buffer, one write: a frame must never be interleaved with
    // another thread's frame at the syscall boundary.
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)
}

/// Encodes a request payload (JSON, unframed).
pub fn encode_request(req: &Request) -> Vec<u8> {
    serde_json::to_string(req)
        .expect("wire types always serialize")
        .into_bytes()
}

/// Encodes a response payload (JSON, unframed).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    serde_json::to_string(resp)
        .expect("wire types always serialize")
        .into_bytes()
}

/// Decodes a request payload.
///
/// # Errors
/// [`FrameError::Malformed`] when the bytes are not a [`Request`].
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    decode(payload)
}

/// Decodes a response payload.
///
/// # Errors
/// [`FrameError::Malformed`] when the bytes are not a [`Response`].
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    decode(payload)
}

fn decode<T: serde::Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let text = std::str::from_utf8(payload).map_err(|e| FrameError::Malformed(e.to_string()))?;
    serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))
}
