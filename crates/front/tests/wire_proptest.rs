//! Property tests for the wire protocol.
//!
//! * The frame decoder is total: arbitrary byte streams never panic it.
//! * Encode → frame → decode round-trips every request/response type,
//!   bitwise for `f64` scores.
//! * Truncated and oversized frames yield the typed errors the protocol
//!   promises.

use costream::graph::{GraphNode, JointGraph};
use costream_front::wire::{
    self, decode_request, decode_response, encode_request, encode_response, ErrorKind, FrameError, Request,
    RequestBody, Response, WireLane,
};
use costream_query::features::NodeType;
use proptest::prelude::*;
use std::io::Cursor;

const MAX: usize = 1 << 20;

/// Drains a byte stream through the frame reader until EOF or the first
/// error. Returning at all (instead of panicking) is the property.
fn drain_frames(bytes: &[u8]) -> Result<usize, FrameError> {
    let mut cursor = Cursor::new(bytes);
    let mut frames = 0;
    loop {
        match wire::read_frame(&mut cursor, MAX)? {
            Some(payload) => {
                // Decoding arbitrary payloads must not panic either.
                let _ = decode_request(&payload);
                let _ = decode_response(&payload);
                frames += 1;
            }
            None => return Ok(frames),
        }
    }
}

/// A deterministic small graph parameterized by the drawn values, so
/// round-trips cover variable node counts, features, and edges.
fn graph(nodes: usize, feat: f64) -> JointGraph {
    let nodes = nodes.max(2);
    JointGraph {
        nodes: (0..nodes)
            .map(|i| GraphNode {
                node_type: if i % 2 == 0 { NodeType::Filter } else { NodeType::Host },
                features: vec![feat as f32, i as f32, 0.5],
            })
            .collect(),
        dataflow_edges: (1..nodes).map(|i| (i - 1, i)).collect(),
        placement_edges: vec![(0, nodes - 1)],
        waves: (0..nodes)
            .map(|i| if i % 2 == 0 { Some(i / 2) } else { None })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        // Raw noise...
        let _ = drain_frames(&bytes);
        // ...and noise that starts with a plausible small header, so the
        // payload path is exercised too.
        let mut framed = (bytes.len() as u32).to_be_bytes().to_vec();
        framed.extend_from_slice(&bytes);
        let _ = drain_frames(&framed);
        prop_assert!(true);
    }

    #[test]
    fn requests_roundtrip_bitwise(id in 0u64..u64::MAX, slot in 0u32..1000, deadline in 0u64..10_000_000, nodes in 2usize..12, feat in -1.0e12f64..1.0e12) {
        let lane = if id % 2 == 0 { WireLane::Interactive } else { WireLane::Bulk };
        let deadline_us = if deadline % 3 == 0 { None } else { Some(deadline) };
        let requests = [
            Request { id, lane, deadline_us, body: RequestBody::Ping },
            Request { id, lane, deadline_us, body: RequestBody::ScorePooled { slot } },
            Request { id, lane, deadline_us, body: RequestBody::Score { graph: graph(nodes, feat) } },
            Request { id, lane, deadline_us, body: RequestBody::LoadPool { base_slot: slot, graphs: vec![graph(nodes, feat), graph(nodes + 1, -feat)] } },
        ];
        for req in &requests {
            let mut framed = Vec::new();
            wire::write_frame(&mut framed, &encode_request(req)).expect("in-memory write");
            let payload = wire::read_frame(&mut Cursor::new(&framed), MAX)
                .expect("valid frame")
                .expect("one frame");
            let back = decode_request(&payload).expect("roundtrip decodes");
            prop_assert_eq!(&back, req);
        }
    }

    #[test]
    fn responses_roundtrip_bitwise(id in 0u64..u64::MAX, score in -1.0e300f64..1.0e300, version in 1u64..1000) {
        let responses = [
            Response::Scored { id, score, version },
            Response::Loaded { id, count: (version % 97) as u32 },
            Response::Pong { id, version, shards: 4 },
            Response::Error { id: Some(id), kind: ErrorKind::Overloaded, detail: "queue full".into() },
            Response::Error { id: None, kind: ErrorKind::BadRequest, detail: String::new() },
        ];
        for resp in &responses {
            let back = decode_response(&encode_response(resp)).expect("roundtrip decodes");
            prop_assert_eq!(&back, resp);
            if let (Response::Scored { score: a, .. }, Response::Scored { score: b, .. }) = (resp, &back) {
                // Bitwise, not approximately: the serving goldens compare
                // wire scores with `==` against in-process prediction.
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn truncated_frames_yield_typed_errors(cut in 0usize..64, id in 0u64..1000) {
        let req = Request { id, lane: WireLane::Bulk, deadline_us: Some(5), body: RequestBody::Ping };
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &encode_request(&req)).expect("in-memory write");
        let cut = cut % framed.len();
        let result = drain_frames(&framed[..cut]);
        if cut == 0 {
            prop_assert_eq!(result.expect("empty stream is clean EOF"), 0);
        } else {
            prop_assert!(matches!(result, Err(FrameError::Truncated)), "cut at {} gave {:?}", cut, result);
        }
    }

    #[test]
    fn oversized_headers_yield_typed_errors(extra in 1u64..u32::MAX as u64) {
        let declared = (MAX as u64 + extra).min(u32::MAX as u64) as u32;
        let framed = declared.to_be_bytes();
        let result = drain_frames(&framed);
        prop_assert!(
            matches!(result, Err(FrameError::Oversized { declared: d, .. }) if d == declared),
            "declared {} gave {:?}", declared, result
        );
    }
}
