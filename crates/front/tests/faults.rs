//! Fault-injection tests: everything a misbehaving client or a dying
//! worker can throw at the front-end, none of which may stop it from
//! serving well-behaved traffic.

use costream::prelude::*;
use costream::test_fixtures;
use costream_front::wire::{self, ErrorKind, Request, RequestBody, Response, WireLane};
use costream_front::{FrontClient, FrontConfig, Frontend};
use costream_serve::ServeConfig;
use std::io::Write;
use std::net::TcpStream;

fn corpus(seed: u64) -> Corpus {
    test_fixtures::corpus(24, seed)
}

fn quick_ensemble(corpus: &Corpus) -> Ensemble {
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        ..Default::default()
    };
    Ensemble::train(corpus, CostMetric::Throughput, &cfg, 1)
}

fn front_config() -> FrontConfig {
    let mut serve = ServeConfig::default();
    serve.workers = serve.workers.max(1);
    FrontConfig {
        shards: 2,
        serve,
        max_frame_bytes: 1 << 20,
        ..FrontConfig::default()
    }
}

#[test]
fn malformed_payload_gets_typed_error_and_connection_survives() {
    let corpus = corpus(120);
    let front = Frontend::start(quick_ensemble(&corpus), front_config()).expect("bind");
    let mut client = FrontClient::connect(front.addr()).expect("connect");

    // A well-framed but undecodable payload: typed error, no id echo
    // (there is nothing to echo), and — crucially — the connection keeps
    // serving because the framing was intact.
    wire::write_frame(client.stream_mut(), b"{ this is not a request }").expect("write");
    match client.recv().expect("typed error response") {
        Response::Error { id, kind, .. } => {
            assert_eq!(id, None);
            assert_eq!(kind, ErrorKind::BadRequest);
        }
        other => panic!("malformed payload answered {other:?}"),
    }
    match client.ping(7).expect("connection must survive") {
        Response::Pong { id, .. } => assert_eq!(id, 7),
        other => panic!("ping answered {other:?}"),
    }
    assert_eq!(front.stats().bad_requests, 1);
}

#[test]
fn oversized_frame_gets_typed_error_then_close_acceptor_survives() {
    let corpus = corpus(121);
    let front = Frontend::start(quick_ensemble(&corpus), front_config()).expect("bind");
    let mut client = FrontClient::connect(front.addr()).expect("connect");

    // Header declaring 2 MiB against a 1 MiB limit: typed error, then
    // the connection closes (the unread payload makes resync impossible).
    client
        .stream_mut()
        .write_all(&(2u32 << 20).to_be_bytes())
        .expect("header write");
    match client.recv().expect("typed error before close") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Oversized),
        other => panic!("oversized frame answered {other:?}"),
    }
    assert!(client.recv().is_err(), "connection must be closed after Oversized");

    // The acceptor is untouched: a fresh connection serves.
    let mut fresh = FrontClient::connect(front.addr()).expect("acceptor alive");
    assert!(fresh.ping(1).is_ok());
    assert_eq!(front.stats().oversized, 1);
}

#[test]
fn mid_frame_disconnects_are_dropped_silently_front_keeps_serving() {
    let corpus = corpus(122);
    let front = Frontend::start(quick_ensemble(&corpus), front_config()).expect("bind");

    // Several rude clients: partial header, partial payload, instant
    // hangup.
    for partial in [&b"\x00"[..], &b"\x00\x00\x00\x40abc"[..], &[]] {
        let mut s = TcpStream::connect(front.addr()).expect("connect");
        s.write_all(partial).expect("partial write");
        drop(s);
    }
    // The front-end still serves a well-behaved client.
    let mut client = FrontClient::connect(front.addr()).expect("connect");
    assert!(client.ping(1).is_ok());
}

#[test]
fn worker_panic_behind_the_wire_respawns_and_serving_recovers() {
    let corpus = corpus(123);
    let ensemble = quick_ensemble(&corpus);
    let graphs: Vec<JointGraph> = corpus.items.iter().map(|i| i.graph(ensemble.featurization())).collect();
    let refs: Vec<&JointGraph> = graphs.iter().collect();
    let direct = ensemble.predict_graphs(&refs);

    let mut cfg = front_config();
    cfg.serve.workers = 1; // One worker per shard: a dead worker is a dead shard.
    let front = Frontend::start(ensemble, cfg).expect("bind");
    let mut client = FrontClient::connect(front.addr()).expect("connect");
    client.load_pool(0, 0, graphs.clone()).expect("loaded");

    // Kill a worker in *every* shard, then demand correct service.
    for shard in 0..2 {
        front.inject_worker_panic(shard);
    }
    for (i, expected) in direct.iter().enumerate() {
        let resp = client
            .call(&Request {
                id: i as u64,
                lane: WireLane::Interactive,
                deadline_us: None,
                body: RequestBody::ScorePooled { slot: i as u32 },
            })
            .expect("served after worker panics");
        match resp {
            Response::Scored { score, .. } => assert!(score == *expected, "slot {i} must stay bitwise-correct"),
            other => panic!("slot {i} answered {other:?}"),
        }
    }
    assert_eq!(front.stats().worker_respawns(), 2, "both injected panics respawned");
}

#[test]
fn bad_slot_and_malformed_graph_fail_typed_not_fatal() {
    let corpus = corpus(124);
    let ensemble = quick_ensemble(&corpus);
    let good = corpus.items[0].graph(ensemble.featurization());
    let front = Frontend::start(ensemble, front_config()).expect("bind");
    let mut client = FrontClient::connect(front.addr()).expect("connect");

    // Scoring a never-loaded slot: typed BadSlot.
    let resp = client
        .call(&Request {
            id: 1,
            lane: WireLane::Interactive,
            deadline_us: None,
            body: RequestBody::ScorePooled { slot: 42 },
        })
        .expect("answered");
    assert!(
        matches!(
            resp,
            Response::Error {
                kind: ErrorKind::BadSlot,
                id: Some(1),
                ..
            }
        ),
        "got {resp:?}"
    );

    // A structurally broken graph (edge past the node list) panics the
    // scoring kernel; the panic is contained to this request.
    let mut bad = good.clone();
    bad.dataflow_edges.push((0, 9999));
    let resp = client
        .call(&Request {
            id: 2,
            lane: WireLane::Interactive,
            deadline_us: None,
            body: RequestBody::Score { graph: bad },
        })
        .expect("answered");
    assert!(
        matches!(
            resp,
            Response::Error {
                kind: ErrorKind::Internal,
                id: Some(2),
                ..
            }
        ),
        "got {resp:?}"
    );

    // The connection — and the scoring worker — survive both.
    let resp = client
        .call(&Request {
            id: 3,
            lane: WireLane::Interactive,
            deadline_us: None,
            body: RequestBody::Score { graph: good },
        })
        .expect("answered");
    assert!(matches!(resp, Response::Scored { id: 3, .. }), "got {resp:?}");
}

#[test]
fn overload_with_mixed_lanes_answers_every_request_typed() {
    let corpus = corpus(125);
    let ensemble = quick_ensemble(&corpus);
    let graphs: Vec<JointGraph> = corpus.items.iter().map(|i| i.graph(ensemble.featurization())).collect();

    // Tiny queues + instant deadline on bulk: heavy pipelined traffic
    // must produce a mix of scores, overloads and sheds — and exactly
    // one typed response per request, never a hang.
    let mut cfg = front_config();
    cfg.serve.workers = 1;
    cfg.serve.queue_cap = 4;
    cfg.serve.bulk_queue_cap = 4;
    cfg.serve.max_delay_us = 0;
    let front = Frontend::start(ensemble, cfg).expect("bind");

    let n = 300u64;
    let mut client = FrontClient::connect(front.addr()).expect("connect");
    client.load_pool(0, 0, graphs.clone()).expect("loaded");
    let mut sent = 0u64;
    let mut received = 0u64;
    let mut outcomes = [0u64; 3]; // scored, overloaded/shed, shed
    let depth = 64;
    let mut bulk_shed = 0u64;
    while received < n {
        while sent < n && sent - received < depth {
            let bulk = sent.is_multiple_of(2);
            client
                .send(&Request {
                    id: sent,
                    lane: if bulk { WireLane::Bulk } else { WireLane::Interactive },
                    // Bulk gets an already-hopeless deadline so shedding
                    // deterministically shows up.
                    deadline_us: if bulk { Some(0) } else { Some(5_000_000) },
                    body: RequestBody::ScorePooled {
                        slot: (sent % graphs.len() as u64) as u32,
                    },
                })
                .expect("send");
            sent += 1;
        }
        let was_bulk_shed = match client.recv().expect("every request must be answered") {
            Response::Scored { .. } => {
                outcomes[0] += 1;
                false
            }
            Response::Error {
                kind: ErrorKind::Overloaded,
                ..
            } => {
                outcomes[1] += 1;
                false
            }
            Response::Error {
                kind: ErrorKind::DeadlineExceeded,
                id,
                ..
            } => {
                outcomes[2] += 1;
                id.is_some_and(|i| i % 2 == 0)
            }
            other => panic!("unexpected overload outcome: {other:?}"),
        };
        if was_bulk_shed {
            bulk_shed += 1;
        }
        received += 1;
    }
    assert_eq!(
        outcomes.iter().sum::<u64>(),
        n,
        "exactly one typed response per request"
    );
    assert!(outcomes[0] > 0, "some requests must be scored");
    assert!(outcomes[2] > 0, "bulk's zero deadline must shed");
    assert_eq!(outcomes[2], bulk_shed, "only bulk requests may be shed in this setup");
    // The front-end survives the overload.
    assert!(client.ping(0).is_ok());
}
