//! End-to-end front-end tests: bitwise score fidelity through the wire,
//! versioned hot swap under concurrent load, and graceful drain.

use costream::prelude::*;
use costream::test_fixtures;
use costream_front::{FrontClient, FrontConfig, Frontend, Request, RequestBody, Response, WireLane};
use costream_serve::ServeConfig;
use std::time::Duration;

fn corpus(seed: u64) -> Corpus {
    test_fixtures::corpus(24, seed)
}

fn quick_ensemble(corpus: &Corpus, train_seed: u64) -> Ensemble {
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        seed: train_seed,
        ..Default::default()
    };
    Ensemble::train(corpus, CostMetric::Throughput, &cfg, 1)
}

fn front_config(shards: usize) -> FrontConfig {
    let mut serve = ServeConfig::default();
    serve.workers = serve.workers.max(1);
    FrontConfig {
        shards,
        serve,
        ..FrontConfig::default()
    }
}

#[test]
fn wire_scores_are_bitwise_identical_to_direct_prediction() {
    let corpus = corpus(110);
    let ensemble = quick_ensemble(&corpus, 0);
    let graphs: Vec<JointGraph> = corpus.items.iter().map(|i| i.graph(ensemble.featurization())).collect();
    let refs: Vec<&JointGraph> = graphs.iter().collect();
    let direct = ensemble.predict_graphs(&refs);

    let front = Frontend::start(ensemble, front_config(2)).expect("bind");
    let mut client = FrontClient::connect(front.addr()).expect("connect");

    // Ping reports version 1 and the shard count.
    match client.ping(999).expect("pong") {
        Response::Pong { id, version, shards } => {
            assert_eq!((id, version, shards), (999, 1, 2));
        }
        other => panic!("ping answered {other:?}"),
    }

    // Inline Score path: every score bitwise equals direct prediction.
    for (i, g) in graphs.iter().enumerate() {
        let resp = client
            .call(&Request {
                id: i as u64,
                lane: WireLane::Interactive,
                deadline_us: None,
                body: RequestBody::Score { graph: g.clone() },
            })
            .expect("scored");
        match resp {
            Response::Scored { id, score, version } => {
                assert_eq!(id, i as u64);
                assert_eq!(version, 1);
                assert!(score == direct[i], "graph {i}: wire {score} != direct {}", direct[i]);
            }
            other => panic!("graph {i} answered {other:?}"),
        }
    }

    // Pooled path: upload once, score by slot — bitwise identical too.
    match client.load_pool(5000, 0, graphs.clone()).expect("loaded") {
        Response::Loaded { count, .. } => assert_eq!(count as usize, graphs.len()),
        other => panic!("load answered {other:?}"),
    }
    for (i, expected) in direct.iter().enumerate() {
        let resp = client
            .call(&Request {
                id: i as u64,
                lane: WireLane::Bulk,
                deadline_us: None,
                body: RequestBody::ScorePooled { slot: i as u32 },
            })
            .expect("scored");
        match resp {
            Response::Scored { score, .. } => {
                assert!(score == *expected, "slot {i}: pooled {score} != direct {expected}");
            }
            other => panic!("slot {i} answered {other:?}"),
        }
    }

    let stats = front.stats();
    assert_eq!(stats.completed(), 2 * graphs.len() as u64);
    // Signature sharding: with two shards and 24 distinct shapes, both
    // shards should see traffic (the hash would have to collapse every
    // signature onto one shard otherwise).
    let busy_shards = stats.shards.iter().filter(|s| s.completed > 0).count();
    assert!(busy_shards >= 1, "at least one shard must have served");
}

#[test]
fn hot_swap_under_concurrent_wire_load_is_versioned_and_lossless() {
    let corpus = corpus(111);
    let e1 = quick_ensemble(&corpus, 1);
    let e2 = quick_ensemble(&corpus, 2);
    let graphs: Vec<JointGraph> = corpus.items.iter().map(|i| i.graph(e1.featurization())).collect();
    let refs: Vec<&JointGraph> = graphs.iter().collect();
    let direct1 = e1.predict_graphs(&refs);
    let direct2 = e2.predict_graphs(&refs);
    assert_ne!(direct1, direct2, "fixture must distinguish the versions");

    let front = Frontend::start(e1, front_config(2)).expect("bind");
    let addr = front.addr();
    let n_clients = 3;
    let rounds = 4;
    std::thread::scope(|s| {
        for c in 0..n_clients {
            let graphs = &graphs;
            let (direct1, direct2) = (&direct1, &direct2);
            s.spawn(move || {
                let mut client = FrontClient::connect(addr).expect("connect");
                client.load_pool(0, 0, graphs.clone()).expect("loaded");
                for step in 0..rounds * graphs.len() {
                    let i = (c * 7 + step) % graphs.len();
                    let resp = client
                        .call(&Request {
                            id: step as u64,
                            lane: WireLane::Interactive,
                            deadline_us: None,
                            body: RequestBody::ScorePooled { slot: i as u32 },
                        })
                        .expect("served across the swap");
                    match resp {
                        // Zero failed requests, and every score is
                        // bitwise the prediction of exactly one version.
                        Response::Scored { score, version, .. } => match version {
                            1 => assert!(score == direct1[i], "v1 must be bitwise v1"),
                            2 => assert!(score == direct2[i], "v2 must be bitwise v2"),
                            v => panic!("impossible version {v}"),
                        },
                        other => panic!("request failed during swap: {other:?}"),
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(5));
        let version = front.swap_model(&e2).expect("plan-congruent swap");
        assert_eq!(version, 2);
    });

    let stats = front.stats();
    assert_eq!(stats.completed(), (n_clients * rounds * graphs.len()) as u64);
    for shard in &stats.shards {
        assert_eq!(shard.failed, 0);
        assert_eq!(shard.swaps, 1);
    }
}

#[test]
fn graceful_shutdown_drains_and_reports() {
    let corpus = corpus(112);
    let ensemble = quick_ensemble(&corpus, 0);
    let graphs: Vec<JointGraph> = corpus
        .items
        .iter()
        .take(6)
        .map(|i| i.graph(ensemble.featurization()))
        .collect();
    let refs: Vec<&JointGraph> = graphs.iter().collect();
    let direct = ensemble.predict_graphs(&refs);

    let front = Frontend::start(ensemble, front_config(1)).expect("bind");
    let mut client = FrontClient::connect(front.addr()).expect("connect");
    // Pipeline a few requests and read the answers, then drain.
    for (i, g) in graphs.iter().enumerate() {
        client
            .send(&Request {
                id: i as u64,
                lane: WireLane::Interactive,
                deadline_us: None,
                body: RequestBody::Score { graph: g.clone() },
            })
            .expect("send");
    }
    for (i, expected) in direct.iter().enumerate() {
        match client.recv().expect("recv") {
            Response::Scored { id, score, .. } => {
                assert_eq!(id as usize, i);
                assert!(score == *expected);
            }
            other => panic!("request {i} answered {other:?}"),
        }
    }
    let report = front.shutdown(Duration::from_secs(10));
    assert!(report.drained, "an idle front-end must drain cleanly");
    assert_eq!(report.abandoned, 0);
    // The connection is closed afterwards.
    assert!(client.ping(0).is_err(), "a drained front-end must not serve");
}
