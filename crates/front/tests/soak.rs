//! Sustained load soak: the loadgen drives mixed-lane pipelined traffic
//! with the chaos thread attacking the connection layer the whole time.
//!
//! Ignored by default (it is a soak, not a unit test). CI runs it with a
//! small request count:
//!
//! ```text
//! COSTREAM_SOAK_REQUESTS=20000 cargo test -p costream-front -- --ignored
//! ```

use costream::prelude::*;
use costream::test_fixtures;
use costream_front::loadgen::{self, LoadgenConfig};
use costream_front::{FrontConfig, Frontend};
use costream_serve::ServeConfig;

#[test]
#[ignore = "soak test: run explicitly (COSTREAM_SOAK_REQUESTS to size it)"]
fn sustained_mixed_lane_load_with_faults_holds_up() {
    let requests: u64 = std::env::var("COSTREAM_SOAK_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);

    let corpus = test_fixtures::corpus(24, 7);
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 16,
        ..Default::default()
    };
    let ensemble = Ensemble::train(&corpus, CostMetric::Throughput, &cfg, 1);
    let pool: Vec<JointGraph> = corpus.items.iter().map(|i| i.graph(ensemble.featurization())).collect();

    let mut serve = ServeConfig::default();
    serve.workers = serve.workers.max(1);
    let front = Frontend::start(
        ensemble,
        FrontConfig {
            shards: 2,
            serve,
            ..FrontConfig::default()
        },
    )
    .expect("bind");

    let report = loadgen::run(
        front.addr(),
        &pool,
        &LoadgenConfig {
            requests,
            faults: true,
            ..LoadgenConfig::default()
        },
    );

    // Every measured request got exactly one typed answer.
    for (name, lane) in [("interactive", &report.interactive), ("bulk", &report.bulk)] {
        let answered = lane.ok + lane.overloaded + lane.shed + lane.other_errors;
        assert_eq!(answered, lane.sent, "{name}: every request answered exactly once");
        assert_eq!(lane.other_errors, 0, "{name}: no untyped/internal errors under chaos");
        assert!(lane.ok > 0, "{name}: some requests must be scored");
    }
    // The chaos thread really ran — the numbers above held *while*
    // malformed frames, oversized headers and mid-frame disconnects
    // landed continuously.
    assert!(report.chaos_rounds > 0, "fault injection must have run");

    let stats = front.stats();
    assert!(stats.bad_requests > 0, "chaos malformed frames were seen");
    assert!(stats.oversized > 0, "chaos oversized headers were seen");
    assert!(stats.disconnects > 0, "chaos mid-frame disconnects were seen");
    for shard in &stats.shards {
        assert_eq!(shard.failed, 0, "no internal failures under soak");
    }

    let drain = front.shutdown(std::time::Duration::from_secs(30));
    assert!(drain.drained, "soak front-end must drain cleanly");

    eprintln!(
        "soak: {} requests in {:.2?}; interactive p50={}µs p99={}µs shed={}; bulk p50={}µs p99={}µs shed={}; chaos rounds={}",
        requests,
        report.elapsed,
        report.interactive.p50_ns / 1_000,
        report.interactive.p99_ns / 1_000,
        report.interactive.shed,
        report.bulk.p50_ns / 1_000,
        report.bulk.p99_ns / 1_000,
        report.bulk.shed,
        report.chaos_rounds,
    );
}
